#include "online/online_engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "core/general_solver.h"
#include "core/instance_util.h"
#include "core/k2_solver.h"
#include "core/short_first_solver.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace mc3::online {

OnlineEngine::OnlineEngine(EngineOptions options)
    : options_(std::move(options)) {}

Result<UpdateStats> OnlineEngine::Initialize(const Instance& instance) {
  if (!instance.property_names().empty()) {
    names_ = instance.property_names();
  }
  // Sorted so a failing classifier reports the same error on every run.
  for (const auto& [classifier, cost] : SortedCostEntries(instance.costs())) {
    MC3_RETURN_IF_ERROR(SetCost(classifier, cost));
  }
  return ApplyUpdate(instance.queries(), {});
}

Status OnlineEngine::SetCost(const PropertySet& classifier, Cost cost) {
  if (classifier.empty()) {
    return Status::InvalidArgument("cannot price the empty classifier");
  }
  if (!std::isfinite(cost) || cost < 0) {
    return Status::InvalidArgument(
        "classifier cost must be finite and non-negative (costs can be "
        "added or re-priced, never removed)");
  }
  costs_[classifier] = cost;
  return Status::OK();
}

Cost OnlineEngine::CostOf(const PropertySet& classifier) const {
  const auto it = costs_.find(classifier);
  return it == costs_.end() ? kInfiniteCost : it->second;
}

bool OnlineEngine::Coverable(const PropertySet& query) const {
  std::unordered_set<PropertyId> covered;
  ForEachNonEmptySubset(query, [&](const PropertySet& sub) {
    if (costs_.count(sub) == 0) return;
    for (PropertyId p : sub) covered.insert(p);
  });
  return covered.size() == query.size();
}

Instance OnlineEngine::BuildSubInstance(
    const std::vector<size_t>& slots) const {
  Instance sub;
  sub.set_property_names(names_);
  for (size_t slot : slots) sub.AddQuery(queries_[slot]);
  for (const PropertySet& q : sub.queries()) {
    ForEachNonEmptySubset(q, [&](const PropertySet& classifier) {
      const auto it = costs_.find(classifier);
      if (it != costs_.end()) sub.SetCost(classifier, it->second);
    });
  }
  return sub;
}

Status OnlineEngine::SolveComponent(const Instance& sub,
                                    Component* out) const {
  SolverOptions inner = options_.solver_options;
  // The engine parallelizes across components; a component is solved by one
  // worker.
  inner.num_threads = 1;

  EngineOptions::SolverKind kind = options_.solver;
  if (kind == EngineOptions::SolverKind::kAuto) {
    kind = sub.MaxQueryLength() <= 2 ? EngineOptions::SolverKind::kK2Exact
                                     : EngineOptions::SolverKind::kGeneral;
  }
  Result<SolveResult> solved = [&]() -> Result<SolveResult> {
    switch (kind) {
      case EngineOptions::SolverKind::kK2Exact:
        return K2ExactSolver(inner).Solve(sub);
      case EngineOptions::SolverKind::kShortFirst:
        return ShortFirstSolver(inner).Solve(sub);
      case EngineOptions::SolverKind::kAuto:
      case EngineOptions::SolverKind::kGeneral:
        break;
    }
    return GeneralSolver(inner).Solve(sub);
  }();
  if (!solved.ok()) return solved.status();
  out->solution = std::move(solved->solution);
  out->cost = solved->cost;
  return Status::OK();
}

Result<UpdateStats> OnlineEngine::ApplyUpdate(
    const std::vector<PropertySet>& add,
    const std::vector<PropertySet>& remove) {
  UpdateStats stats;

  // Resolve the batch against the live set before touching anything, so a
  // rejected batch leaves the engine untouched. Removes apply first; a
  // query both removed and (re-)added nets out to its prior state.
  std::unordered_set<PropertySet, PropertySetHash> added_set(add.begin(),
                                                             add.end());
  std::vector<size_t> remove_slots;
  std::unordered_set<size_t> remove_slot_set;
  for (const PropertySet& q : remove) {
    if (added_set.count(q) > 0) continue;  // cancelled by the add below
    const auto it = slot_of_.find(q);
    if (it == slot_of_.end() || !live_[it->second]) {
      ++stats.missing_removes;
      continue;
    }
    if (remove_slot_set.insert(it->second).second) {
      remove_slots.push_back(it->second);
    }
  }
  std::vector<PropertySet> to_add;
  std::unordered_set<PropertySet, PropertySetHash> to_add_set;
  for (const PropertySet& q : add) {
    if (q.empty()) {
      return Status::InvalidArgument("cannot add the empty query");
    }
    const auto it = slot_of_.find(q);
    if ((it != slot_of_.end() && live_[it->second]) ||
        !to_add_set.insert(q).second) {
      ++stats.duplicate_adds;
      continue;
    }
    if (options_.solver == EngineOptions::SolverKind::kK2Exact &&
        q.size() > 2) {
      return Status::InvalidArgument(
          "query " + q.ToString(names_) +
          " has length > 2 but the engine is configured for K2ExactSolver");
    }
    if (!Coverable(q)) {
      return Status::Infeasible(
          "query " + q.ToString(names_) +
          " cannot be covered by finite-cost classifiers of the engine's "
          "table");
    }
    to_add.push_back(q);
  }

  ++counters_.updates;
  if (to_add.empty() && remove_slots.empty()) return stats;

  obs::ScopedSpan span("online_update");
  Timer timer;

  // Locate the dirty components: owners of removed queries and of every
  // already-indexed property of an added query.
  std::vector<size_t> dirty;
  for (size_t slot : remove_slots) dirty.push_back(component_of_slot_[slot]);
  for (const PropertySet& q : to_add) {
    for (PropertyId p : q) {
      const auto it = component_of_prop_.find(p);
      if (it != component_of_prop_.end()) dirty.push_back(it->second);
    }
  }
  // Determinism contract: dirty ids are collected from hash lookups, so sort
  // and dedupe before anything downstream observes the order. Every later
  // stage (region assembly, repartition, commit) iterates in this order.
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  stats.components_dirtied = dirty.size();

  // Apply removals (slots are tombstoned, never erased, so a removed query
  // can be revived in place later).
  for (size_t slot : remove_slots) {
    live_[slot] = false;
    --num_live_;
  }
  stats.queries_removed = remove_slots.size();

  // The dirty region: surviving queries of dirty components plus the adds.
  std::vector<size_t> region;
  for (size_t cid : dirty) {
    const Component& component = components_.at(cid);
    for (size_t slot : component.queries) {
      if (live_[slot]) region.push_back(slot);
    }
  }
  for (const PropertySet& q : to_add) {
    size_t slot;
    const auto it = slot_of_.find(q);
    if (it != slot_of_.end()) {
      slot = it->second;  // revive the tombstoned slot
    } else {
      slot = queries_.size();
      queries_.push_back(q);
      live_.push_back(false);
      component_of_slot_.push_back(0);
      slot_of_.emplace(q, slot);
    }
    live_[slot] = true;
    ++num_live_;
    region.push_back(slot);
  }
  stats.queries_added = to_add.size();
  stats.queries_touched = region.size();

  // Retire the dirty components and their property-index entries (the
  // region's new partition re-registers the properties still in use).
  for (size_t cid : dirty) {
    const Component& component = components_.at(cid);
    for (size_t slot : component.queries) {
      for (PropertyId p : queries_[slot]) {
        const auto it = component_of_prop_.find(p);
        if (it != component_of_prop_.end() && it->second == cid) {
          component_of_prop_.erase(it);
        }
      }
    }
    total_cost_ -= component.cost;
    components_.erase(cid);
  }

  // Lazy repartition of the dirty region only (adds may have merged dirty
  // components; removes may have split them). Sorting the region by query
  // slot makes the re-solve order canonical: PartitionQueries numbers
  // components by first appearance, so each fresh component is solved and
  // committed in order of its smallest member slot regardless of the update
  // batch's iteration history.
  std::sort(region.begin(), region.end());
  std::vector<std::vector<size_t>> groups;
  {
    obs::ScopedSpan repartition_span("repartition");
    const ComponentPartition partition = PartitionQueries(queries_, region);
    groups.resize(partition.num_components);
    for (size_t idx = 0; idx < region.size(); ++idx) {
      groups[partition.component_of[idx]].push_back(region[idx]);
    }
    repartition_span.AddStat("region_queries",
                             static_cast<double>(region.size()));
    repartition_span.AddStat("components",
                             static_cast<double>(groups.size()));
  }

  // Re-solve the new components, in parallel across components.
  std::vector<Component> fresh(groups.size());
  std::vector<Status> statuses(groups.size());
  const obs::TraceContext trace_context = obs::CurrentTraceContext();
  ParallelFor(groups.size(), options_.solver_options.num_threads,
              [&](size_t i) {
                obs::ScopedSpanAdoption adopt(trace_context);
                obs::ScopedSpan solve_span("solve_component");
                fresh[i].queries = std::move(groups[i]);
                solve_span.AddStat(
                    "queries", static_cast<double>(fresh[i].queries.size()));
                statuses[i] =
                    SolveComponent(BuildSubInstance(fresh[i].queries),
                                   &fresh[i]);
              });
  Status first_error;
  for (size_t i = 0; i < fresh.size(); ++i) {
    // A failed solve (possible only through an engine bug: adds are
    // pre-checked coverable and costs are never removed) is committed with
    // an infinite cost so the structural index stays consistent.
    if (!statuses[i].ok()) {
      if (first_error.ok()) first_error = statuses[i];
      fresh[i].solution = Solution{};
      fresh[i].cost = kInfiniteCost;
    }
    const size_t cid = next_component_id_++;
    for (size_t slot : fresh[i].queries) {
      component_of_slot_[slot] = cid;
      for (PropertyId p : queries_[slot]) component_of_prop_[p] = cid;
    }
    total_cost_ += fresh[i].cost;
    components_.emplace(cid, std::move(fresh[i]));
  }
  stats.components_resolved = fresh.size();
  stats.resolve_seconds = timer.Seconds();

  counters_.queries_added += stats.queries_added;
  counters_.queries_removed += stats.queries_removed;
  counters_.components_resolved += stats.components_resolved;
  counters_.queries_touched += stats.queries_touched;
  counters_.resolve_seconds += stats.resolve_seconds;

  span.AddStat("queries_added", static_cast<double>(stats.queries_added));
  span.AddStat("queries_removed", static_cast<double>(stats.queries_removed));
  span.AddStat("components_dirtied",
               static_cast<double>(stats.components_dirtied));
  span.AddStat("components_resolved",
               static_cast<double>(stats.components_resolved));
  span.AddStat("queries_touched",
               static_cast<double>(stats.queries_touched));
  {
    auto& registry = obs::MetricsRegistry::Global();
    static obs::Counter& updates = registry.GetCounter("online.updates");
    static obs::Counter& touched =
        registry.GetCounter("online.queries_touched");
    static obs::Counter& repartitions =
        registry.GetCounter("online.repartitions");
    static obs::Counter& resolved =
        registry.GetCounter("online.components_resolved");
    static obs::Histogram& latency =
        registry.GetHistogram("online.resolve_seconds");
    updates.Add();
    touched.Add(stats.queries_touched);
    repartitions.Add();
    resolved.Add(stats.components_resolved);
    latency.Record(stats.resolve_seconds);
  }

  if (!first_error.ok()) return first_error;
  return stats;
}

Result<UpdateStats> OnlineEngine::AddQueries(
    const std::vector<PropertySet>& queries) {
  return ApplyUpdate(queries, {});
}

Result<UpdateStats> OnlineEngine::RemoveQueries(
    const std::vector<PropertySet>& queries) {
  return ApplyUpdate({}, queries);
}

Solution OnlineEngine::CurrentSolution() const {
  std::vector<size_t> ids;
  ids.reserve(components_.size());
  // mc3-lint: unordered-ok(ids are sorted before any order-sensitive use)
  for (const auto& [cid, component] : components_) ids.push_back(cid);
  std::sort(ids.begin(), ids.end());
  Solution merged;
  for (size_t cid : ids) merged.Merge(components_.at(cid).solution);
  return merged;
}

Instance OnlineEngine::LiveInstance() const {
  std::vector<size_t> slots;
  for (size_t slot = 0; slot < queries_.size(); ++slot) {
    if (live_[slot]) slots.push_back(slot);
  }
  return BuildSubInstance(slots);
}

size_t EngineState::NumQueries() const {
  size_t n = 0;
  for (const Component& component : components) n += component.queries.size();
  return n;
}

EngineState OnlineEngine::ExportState() const {
  EngineState state;
  state.property_names = names_;
  state.costs = SortedCostEntries(costs_);
  std::vector<size_t> ids;
  ids.reserve(components_.size());
  // mc3-lint: unordered-ok(ids are sorted before any order-sensitive use)
  for (const auto& [cid, component] : components_) ids.push_back(cid);
  std::sort(ids.begin(), ids.end());
  state.components.reserve(ids.size());
  for (size_t cid : ids) {
    const Component& component = components_.at(cid);
    EngineState::Component out;
    std::vector<size_t> slots = component.queries;
    std::sort(slots.begin(), slots.end());
    out.queries.reserve(slots.size());
    for (size_t slot : slots) out.queries.push_back(queries_[slot]);
    out.solution = component.solution.Sorted();
    out.cost = component.cost;
    state.components.push_back(std::move(out));
  }
  return state;
}

Status OnlineEngine::ImportState(const EngineState& state) {
  if (!queries_.empty() || !components_.empty() || !costs_.empty()) {
    return Status::Internal(
        "ImportState requires an untouched engine (it does not merge)");
  }
  names_ = state.property_names;
  // mc3-lint: unordered-ok(EngineState.costs is a sorted vector, not a map)
  for (const auto& [classifier, cost] : state.costs) {
    MC3_RETURN_IF_ERROR(SetCost(classifier, cost));
  }
  for (const EngineState::Component& in : state.components) {
    if (in.queries.empty()) {
      return Status::InvalidArgument("snapshot component has no queries");
    }
    if (!std::isfinite(in.cost) || in.cost < 0) {
      return Status::InvalidArgument(
          "snapshot component cost must be finite and non-negative");
    }
    const size_t cid = next_component_id_++;
    Component component;
    for (const PropertySet& query : in.queries) {
      if (query.empty()) {
        return Status::InvalidArgument("snapshot contains an empty query");
      }
      const size_t slot = queries_.size();
      if (!slot_of_.emplace(query, slot).second) {
        return Status::InvalidArgument("snapshot repeats query " +
                                       query.ToString(names_));
      }
      queries_.push_back(query);
      live_.push_back(true);
      component_of_slot_.push_back(cid);
      ++num_live_;
      component.queries.push_back(slot);
      for (PropertyId p : query) {
        const auto [it, inserted] = component_of_prop_.emplace(p, cid);
        if (!inserted && it->second != cid) {
          return Status::InvalidArgument(
              "snapshot shares a property across components");
        }
      }
    }
    for (const PropertySet& classifier : in.solution) {
      component.solution.Add(classifier);
    }
    component.cost = in.cost;
    total_cost_ += component.cost;
    components_.emplace(cid, std::move(component));
  }
  return Status::OK();
}

Status OnlineEngine::CheckInvariants() const {
  size_t live_count = 0;
  for (size_t slot = 0; slot < queries_.size(); ++slot) {
    if (live_[slot]) ++live_count;
  }
  if (live_count != num_live_) {
    return Status::Internal("live-query counter out of sync");
  }

  // Components partition the live slots, and slot/property indexes agree.
  size_t partitioned = 0;
  std::unordered_map<PropertyId, size_t> expected_props;
  Cost component_sum = 0;
  // mc3-lint: unordered-ok(invariant scan; every failure is the same error)
  for (const auto& [cid, component] : components_) {
    if (component.queries.empty()) {
      return Status::Internal("empty component in the registry");
    }
    for (size_t slot : component.queries) {
      if (slot >= queries_.size() || !live_[slot]) {
        return Status::Internal("component lists a dead query slot");
      }
      if (component_of_slot_[slot] != cid) {
        return Status::Internal("slot index disagrees with the registry");
      }
      ++partitioned;
      for (PropertyId p : queries_[slot]) {
        const auto [it, inserted] = expected_props.emplace(p, cid);
        if (!inserted && it->second != cid) {
          return Status::Internal("property shared across components");
        }
      }
    }
    component_sum += component.cost;
  }
  if (partitioned != num_live_) {
    return Status::Internal("components do not partition the live queries");
  }
  if (expected_props.size() != component_of_prop_.size()) {
    return Status::Internal("property index size mismatch");
  }
  // mc3-lint: unordered-ok(invariant scan; every failure is the same error)
  for (const auto& [p, cid] : expected_props) {
    const auto it = component_of_prop_.find(p);
    if (it == component_of_prop_.end() || it->second != cid) {
      return Status::Internal("property index entry mismatch");
    }
  }
  const Cost tolerance = 1e-6 * (1 + std::abs(component_sum));
  if (std::abs(component_sum - total_cost_) > tolerance) {
    return Status::Internal("aggregate cost out of sync with components");
  }

  // The maintained cover must equal VerifyCoverage on the live instance.
  const Instance live = LiveInstance();
  const CoverageReport report = VerifyCoverage(live, CurrentSolution());
  if (!report.covers_all) {
    return Status::Internal(
        std::to_string(report.uncovered_queries.size()) +
        " live queries uncovered by the maintained solution");
  }
  return Status::OK();
}

}  // namespace mc3::online
