// ShardedEngine: N OnlineEngines behind one facade, each owning a disjoint
// slice of the live components (docs/serving.md).
//
// The paper's decomposition (Observation 3.2) already splits the instance
// into independently solvable components; the sharded engine scales that
// across engine workers while staying byte-equivalent to a single engine:
//
//   * a ShardRouter (src/online/shard_router.h) keeps every connected
//     component entirely on one shard, migrating queries when an add merges
//     groups placed apart;
//   * the classifier cost table is replicated to every shard, so each
//     shard prices, validates and solves exactly as the single engine
//     would;
//   * merged reads (CurrentSolution, CanonicalState, CanonicalTotalCost)
//     combine per-shard results in canonical order, so the merged answer
//     does not depend on which shard holds which component.
//
// With num_shards == 1 the facade is a transparent pass-through to one
// OnlineEngine — no router, no replication, byte-for-byte the legacy
// behavior (including the legacy mc3.snapshot/1 export).
//
// Not thread-safe: callers serialize all calls, exactly like OnlineEngine.
// The ShardRunner hook lets a caller execute the per-shard apply jobs of
// one batch on its own worker threads (src/server/server.cc does); the
// facade only requires that all jobs completed before the runner returns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/solution.h"
#include "online/online_engine.h"
#include "online/shard_router.h"
#include "util/status.h"

namespace mc3::online {

/// Serializable sharded engine state: the concatenated per-shard
/// EngineState (components in shard-major order) plus each component's
/// owning shard. num_shards == 1 round-trips through the legacy
/// mc3.snapshot/1 document; larger layouts use mc3.snapshot/2
/// (src/durability/snapshot.h).
struct ShardedState {
  uint32_t num_shards = 1;
  EngineState state;
  /// Owning shard per state.components entry (parallel array).
  std::vector<uint32_t> component_shards;
};

/// Canonicalizes an exported engine state independently of update history
/// and shard placement: queries sorted within each component, components
/// sorted by their (distinct) smallest query. Byte-identical canonical
/// states are the sharded-vs-single equivalence oracle
/// (tests/determinism_test.cc).
EngineState CanonicalizeState(EngineState state);

/// Per-batch routing outcome, for server metrics and tests.
struct ShardBatchStats {
  /// Ops (adds + removes) dispatched to each shard by the last batch.
  std::vector<size_t> shard_ops;
  /// Wall-clock seconds each shard spent applying its slice of the last
  /// batch (0 for untouched shards; measured inside the apply job, so a
  /// concurrent runner reports genuinely parallel times).
  std::vector<double> shard_apply_seconds;
  size_t migrated = 0;
};

class ShardedEngine {
 public:
  /// Executes the per-shard apply jobs of one routed batch. Entries are
  /// empty std::functions for shards the batch does not touch; a runner may
  /// run the rest concurrently (one job per shard at most) but must finish
  /// them all before returning.
  using ShardRunner =
      std::function<void(std::vector<std::function<void()>>* jobs)>;

  explicit ShardedEngine(uint32_t num_shards, EngineOptions options = {});

  uint32_t num_shards() const {
    return static_cast<uint32_t>(engines_.size());
  }
  OnlineEngine& shard(uint32_t index) { return engines_[index]; }
  const OnlineEngine& shard(uint32_t index) const { return engines_[index]; }

  /// Merges `base`'s cost table into every shard and routes its queries as
  /// one batch (mirrors OnlineEngine::Initialize).
  Result<UpdateStats> Initialize(const Instance& base);

  /// Prices `classifier` on every shard (the table is replicated so each
  /// shard validates and solves exactly like the single engine).
  Status SetCost(const PropertySet& classifier, Cost cost);
  Cost CostOf(const PropertySet& classifier) const;

  /// Applies one net update batch: validates every add up front (identical
  /// checks and messages to OnlineEngine::ApplyUpdate, so a rejected batch
  /// mutates nothing), routes it, applies per shard, and merges the stats.
  /// queries_added/removed count the user's net effect; components_resolved
  /// and queries_touched sum the per-shard work (group migrations re-solve
  /// the moved components on both sides, so these can exceed the
  /// single-engine numbers).
  Result<UpdateStats> ApplyUpdate(const std::vector<PropertySet>& add,
                                  const std::vector<PropertySet>& remove);
  Result<UpdateStats> ApplyUpdate(const std::vector<PropertySet>& add,
                                  const std::vector<PropertySet>& remove,
                                  const ShardRunner& runner);

  /// Sum of the per-shard aggregate costs in shard order (for num_shards
  /// == 1, exactly the single engine's running total).
  Cost TotalCost() const;
  /// Shard- and history-independent total: per-component costs summed in
  /// canonical component order. Use when comparing across shard layouts
  /// (float addition is not associative).
  Cost CanonicalTotalCost() const;

  /// Union of every shard's solution, merged in shard order (deduplicated;
  /// render through Solution::Sorted for canonical bytes).
  Solution CurrentSolution() const;

  size_t NumQueries() const;
  size_t NumComponents() const;

  /// Facade-level counters: updates counts batches through this facade;
  /// queries_added/removed count net user effect (migrations excluded);
  /// the work counters sum the shards. For num_shards == 1 these are the
  /// single engine's counters verbatim.
  EngineCounters counters() const;

  /// Live queries migrated between shards over the engine's lifetime.
  size_t migrated_total() const { return migrated_total_; }
  /// Routing outcome of the most recent ApplyUpdate.
  const ShardBatchStats& last_batch() const { return last_batch_; }

  const std::vector<std::string>& property_names() const { return names_; }
  /// Adopts `names` on the facade and every shard.
  void set_property_names(std::vector<std::string> names);

  /// Exports the full sharded state (shard-major canonical component
  /// order, replicated cost table rendered once).
  ShardedState ExportSharded() const;
  /// The merged state in canonical form (shard- and history-independent).
  EngineState CanonicalState() const;

  /// Restores an exported sharded state into this untouched engine. Fails
  /// with InvalidArgument when `state.num_shards` disagrees with this
  /// engine's layout (a snapshot/--shards mismatch) or the placement
  /// splits a connected component across shards.
  Status ImportSharded(const ShardedState& state);

  /// Per-shard invariants plus the sharding contract: live sets disjoint,
  /// no property shared across shards (connected queries co-located), the
  /// router's placement in sync, the cost table replicated everywhere.
  Status CheckInvariants() const;

  const ShardRouter& router() const { return router_; }

 private:
  /// Mirrors OnlineEngine::ApplyUpdate's add validation (same order, same
  /// messages) against the replicated table, so a batch the single engine
  /// would reject is rejected here before any shard or router mutation.
  Status ValidateAdds(const std::vector<PropertySet>& add) const;
  bool Coverable(const PropertySet& query) const;

  EngineOptions options_;
  std::vector<OnlineEngine> engines_;
  ShardRouter router_;
  /// Replicated table mirror (validation without poking a shard).
  CostMap costs_;
  std::vector<std::string> names_;

  size_t migrated_total_ = 0;
  ShardBatchStats last_batch_;
  EngineCounters counters_;
};

}  // namespace mc3::online
