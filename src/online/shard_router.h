// ShardRouter: deterministic query -> shard assignment for the sharded
// serving engine (src/online/sharded_engine.h, docs/serving.md).
//
// The paper's decomposition (Observation 3.2) makes connected components of
// the shared-property graph independent solve units, so a sharded engine is
// byte-equivalent to a single engine exactly when every component lives
// entirely on one shard. A per-query hash cannot guarantee that (two queries
// sharing a property could hash apart), so the router maintains a *monotone*
// union-find over property ids: every add unions its properties, and removes
// never split. Router groups therefore only over-approximate true
// connectivity — which is safe, because co-locating more than a component is
// still co-locating the component.
//
// Assignment rules (all deterministic in the update history):
//   * a group seen for the first time (all properties unknown) is placed by
//     a stable FNV-1a hash of the added query's sorted property ids;
//   * an add that touches one known group joins that group's shard;
//   * an add that merges groups placed on different shards picks the shard
//     owning the most live queries among them (ties: the smallest shard
//     index) and *migrates* the losing groups' live queries — emitted as a
//     remove on their old shard plus an add on the winning shard.
//
// Route() resolves one net update batch into per-shard batches by diffing
// the before/after placement of every affected query, so each query appears
// at most once per shard (as an add or a remove, never both) and per-shard
// application order cannot resurrect or double-apply anything.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/property_set.h"
#include "util/status.h"
#include "util/union_find.h"

namespace mc3::online {

/// One shard's slice of a routed batch. ApplyUpdate semantics: removes
/// apply before adds; here a query never appears in both.
struct ShardOps {
  std::vector<PropertySet> remove;
  std::vector<PropertySet> add;
  bool empty() const { return remove.empty() && add.empty(); }
  size_t ops() const { return remove.size() + add.size(); }
};

/// Result of routing one net batch.
struct RoutePlan {
  std::vector<ShardOps> shards;
  /// Live queries moved between shards by group merges (each contributes
  /// one remove and one add beyond the user's own ops).
  size_t migrated = 0;
  /// Net effect of the user's ops (excluding migrations), mirroring the
  /// single engine's UpdateStats accounting.
  size_t queries_added = 0;
  size_t queries_removed = 0;
  size_t duplicate_adds = 0;
  size_t missing_removes = 0;
};

class ShardRouter {
 public:
  explicit ShardRouter(uint32_t num_shards);

  uint32_t num_shards() const { return num_shards_; }
  size_t num_live() const { return shard_of_query_.size(); }

  /// True when `query` is live (routed by an earlier add, not yet removed).
  bool IsLive(const PropertySet& query) const {
    return shard_of_query_.count(query) > 0;
  }
  /// The shard a live query is placed on; num_shards() when not live.
  uint32_t ShardOf(const PropertySet& query) const;

  /// Routes one net update batch and commits the resulting placement.
  /// The caller must have validated the adds (the router assumes every
  /// listed op will be applied); removes of unknown queries and adds of
  /// live queries are counted and dropped, mirroring the engine.
  RoutePlan Route(const std::vector<PropertySet>& add,
                  const std::vector<PropertySet>& remove);

  /// Rebuilds the router from an existing placement (recovery from a
  /// sharded snapshot): every query of `live_by_shard[s]` is adopted as
  /// live on shard `s`. Fails when two connected queries are placed on
  /// different shards (such a snapshot violates the co-location invariant)
  /// or a query repeats.
  Status AdoptAssignment(
      const std::vector<std::vector<PropertySet>>& live_by_shard);

  /// Audit: every pair of live queries sharing a property is placed on the
  /// same shard (the invariant that makes sharded solving byte-equivalent
  /// to single-engine solving).
  Status CheckInvariants() const;

 private:
  struct Group {
    uint32_t shard = 0;
    /// Live queries of the group, insertion-ordered (sorted when emitted).
    std::vector<PropertySet> queries;
  };

  /// Stable placement hash for a brand-new group.
  uint32_t HashShard(const PropertySet& query) const;

  /// Group of the property's union-find root, or nullptr.
  Group* FindGroup(PropertyId prop);

  uint32_t num_shards_ = 1;
  /// Monotone connectivity over property ids (never split on removal).
  mutable UnionFind uf_;
  /// Union-find root -> group metadata. Rehomed when roots merge; empty
  /// groups are kept so re-added properties rejoin their old shard.
  std::unordered_map<uint32_t, Group> groups_;
  std::unordered_map<PropertySet, uint32_t, PropertySetHash> shard_of_query_;
};

}  // namespace mc3::online
