#include "online/churn.h"

#include <algorithm>
#include <utility>

namespace mc3::online {
namespace {

/// Shifts every property id of `set` by `offset`.
PropertySet OffsetSet(const PropertySet& set, PropertyId offset) {
  std::vector<PropertyId> ids = set.ids();
  for (PropertyId& id : ids) id += offset;
  return PropertySet::FromSorted(std::move(ids));
}

}  // namespace

Instance GenerateShardedSynthetic(const ShardedSyntheticConfig& config) {
  Instance merged;
  PropertyId offset = 0;
  for (size_t d = 0; d < config.num_domains; ++d) {
    data::SyntheticConfig domain = config.domain;
    domain.seed = config.domain.seed + d;
    const Instance shard = data::GenerateSynthetic(domain);
    PropertyId max_id = 0;
    for (const PropertySet& q : shard.queries()) {
      merged.AddQuery(OffsetSet(q, offset));
      max_id = std::max(max_id, *(q.end() - 1));
    }
    for (const auto& [classifier, cost] : SortedCostEntries(shard.costs())) {
      merged.SetCost(OffsetSet(classifier, offset), cost);
    }
    offset += max_id + 1;
  }
  return merged;
}

ChurnGenerator::ChurnGenerator(const Instance& base, uint64_t seed)
    : queries_(base.queries()), rng_(seed) {
  live_.resize(queries_.size());
  for (size_t i = 0; i < live_.size(); ++i) live_[i] = i;
}

size_t ChurnGenerator::Draw(std::vector<size_t>* pool) {
  const size_t at = rng_.UniformInt(0, pool->size() - 1);
  const size_t picked = (*pool)[at];
  (*pool)[at] = pool->back();
  pool->pop_back();
  return picked;
}

ChurnGenerator::Batch ChurnGenerator::Next(size_t adds, size_t removes) {
  Batch batch;
  removes = std::min(removes, live_.size());
  for (size_t i = 0; i < removes; ++i) {
    const size_t picked = Draw(&live_);
    batch.remove.push_back(queries_[picked]);
    retired_.push_back(picked);
  }
  adds = std::min(adds, retired_.size());
  for (size_t i = 0; i < adds; ++i) {
    const size_t picked = Draw(&retired_);
    batch.add.push_back(queries_[picked]);
    live_.push_back(picked);
  }
  return batch;
}

}  // namespace mc3::online
