// Immutable per-shard engine snapshot for the lock-free read path.
//
// After every applied batch the serving layer builds one EngineReadView per
// touched shard — a plain value object holding everything the read verbs
// (`solve`, `snapshot`, `stats`) render: the shard's running total cost,
// live-query and component counts, and the current solution in canonical
// (sorted) order with each classifier's table price. The view is published
// through a concurrency::VersionedPublisher and reclaimed through the
// concurrency::EpochManager, so readers dereference it without locks,
// refcounts or copies (docs/serving.md, "Lock-free reads").
//
// The numeric fields snapshot the engine accessors verbatim (TotalCost is
// the engine's own double running total, not a canonical re-sum), so a
// response rendered from views is byte-identical to one rendered under the
// engine mutex at the same instant — the property the sharded-vs-single
// and batched-vs-sequential determinism suites pin down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "online/online_engine.h"

namespace mc3::online {

/// Point-in-time read-only snapshot of one OnlineEngine (one shard).
struct EngineReadView {
  /// Publish count of the owning shard's publisher (monotone, 1-based).
  uint64_t version = 0;
  /// The shard's running aggregate cost (OnlineEngine::TotalCost verbatim;
  /// cross-shard reads sum these in shard order, exactly like
  /// ShardedEngine::TotalCost).
  Cost total_cost = 0;
  size_t num_queries = 0;
  size_t num_components = 0;
  /// The shard's current solution, canonically sorted, each classifier
  /// paired with its price in the (replicated) cost table at publish time.
  std::vector<std::pair<PropertySet, Cost>> classifiers;
};

/// Snapshots `engine` into a view stamped with `version`. Caller holds
/// whatever lock serializes engine mutations (the server's engine_mu_).
EngineReadView BuildReadView(const OnlineEngine& engine, uint64_t version);

}  // namespace mc3::online
