#include "online/shard_router.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace mc3::online {

ShardRouter::ShardRouter(uint32_t num_shards)
    : num_shards_(num_shards == 0 ? 1 : num_shards) {}

uint32_t ShardRouter::ShardOf(const PropertySet& query) const {
  const auto it = shard_of_query_.find(query);
  return it == shard_of_query_.end() ? num_shards_ : it->second;
}

uint32_t ShardRouter::HashShard(const PropertySet& query) const {
  // FNV-1a's low bits are weak (multiplication only carries upward, so
  // they see just the low bits of the input); a raw `% num_shards` sends
  // whole query families to one shard. Finalize with a splitmix64-style
  // mixer so every input bit reaches the modulus.
  uint64_t h = query.Hash();
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<uint32_t>(h % num_shards_);
}

ShardRouter::Group* ShardRouter::FindGroup(PropertyId prop) {
  const auto it = groups_.find(uf_.Find(prop));
  return it == groups_.end() ? nullptr : &it->second;
}

RoutePlan ShardRouter::Route(const std::vector<PropertySet>& add,
                             const std::vector<PropertySet>& remove) {
  RoutePlan plan;
  plan.shards.resize(num_shards_);

  /// Before/after placement of one affected query; the plan is emitted from
  /// these diffs so every query appears at most once per shard.
  struct Delta {
    bool was_live = false;
    uint32_t old_shard = 0;
    bool now_live = false;
    uint32_t new_shard = 0;
  };
  std::unordered_map<PropertySet, Delta, PropertySetHash> deltas;

  const std::unordered_set<PropertySet, PropertySetHash> added_set(
      add.begin(), add.end());

  // Removes first (ApplyUpdate order). A remove cancelled by an add of the
  // same query nets out, exactly as the engine nets it; repeated removes of
  // one query collapse silently, like the engine's slot dedup.
  std::unordered_set<PropertySet, PropertySetHash> removed_now;
  for (const PropertySet& q : remove) {
    if (added_set.count(q) > 0) continue;
    if (removed_now.count(q) > 0) continue;
    const auto it = shard_of_query_.find(q);
    if (it == shard_of_query_.end()) {
      ++plan.missing_removes;
      continue;
    }
    Group* group = FindGroup(q.ids().front());
    if (group != nullptr) {
      const auto pos = std::find(group->queries.begin(), group->queries.end(), q);
      if (pos != group->queries.end()) group->queries.erase(pos);
    }
    Delta d;
    d.was_live = true;
    d.old_shard = it->second;
    deltas.emplace(q, d);
    removed_now.insert(q);
    shard_of_query_.erase(it);
    ++plan.queries_removed;
  }

  // Adds, in batch order: join the touched groups' shard (merging groups
  // and migrating losers when they disagree) or place a fresh group by
  // hash.
  std::unordered_set<PropertySet, PropertySetHash> batch_new;
  for (const PropertySet& q : add) {
    if (shard_of_query_.count(q) > 0 || !batch_new.insert(q).second) {
      ++plan.duplicate_adds;
      continue;
    }
    std::vector<uint32_t> roots;
    for (const PropertyId p : q) {
      const uint32_t root = uf_.Find(p);
      if (groups_.count(root) > 0) roots.push_back(root);
    }
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());

    uint32_t target = 0;
    if (roots.empty()) {
      target = HashShard(q);
    } else {
      // Winner: the shard holding the most live queries among the touched
      // groups; ties break to the smallest shard index. Deterministic and
      // migration-minimizing.
      std::vector<std::pair<uint32_t, size_t>> live_per_shard;
      for (const uint32_t root : roots) {
        const Group& group = groups_.at(root);
        bool merged = false;
        for (auto& [shard, count] : live_per_shard) {
          if (shard == group.shard) {
            count += group.queries.size();
            merged = true;
            break;
          }
        }
        if (!merged) live_per_shard.emplace_back(group.shard,
                                                 group.queries.size());
      }
      target = live_per_shard.front().first;
      size_t best = live_per_shard.front().second;
      for (const auto& [shard, count] : live_per_shard) {
        if (count > best || (count == best && shard < target)) {
          target = shard;
          best = count;
        }
      }
    }

    // Merge the touched groups: migrate losers' live queries to the target
    // shard, fold every group into one, and union the query's properties.
    Group merged;
    merged.shard = target;
    for (const uint32_t root : roots) {
      Group& group = groups_.at(root);
      if (group.shard != target) {
        std::vector<PropertySet> moving = group.queries;
        std::sort(moving.begin(), moving.end());
        for (const PropertySet& m : moving) {
          shard_of_query_[m] = target;
          const auto [dit, inserted] = deltas.try_emplace(m, Delta{});
          if (inserted) {
            dit->second.was_live = true;
            dit->second.old_shard = group.shard;
          }
          dit->second.now_live = true;
          dit->second.new_shard = target;
        }
      }
      merged.queries.insert(merged.queries.end(), group.queries.begin(),
                            group.queries.end());
      groups_.erase(root);
    }
    for (const PropertyId p : q) uf_.Union(p, q.ids().front());
    merged.queries.push_back(q);
    groups_[uf_.Find(q.ids().front())] = std::move(merged);

    shard_of_query_[q] = target;
    Delta d;
    d.now_live = true;
    d.new_shard = target;
    deltas.emplace(q, d);
    ++plan.queries_added;
  }

  // Emit per-shard ops from the placement diffs, in canonical query order.
  std::vector<std::pair<PropertySet, Delta>> ordered(deltas.begin(),
                                                     deltas.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [q, d] : ordered) {
    const bool moved = d.was_live && d.now_live && d.new_shard != d.old_shard;
    if (d.was_live && (!d.now_live || moved)) {
      plan.shards[d.old_shard].remove.push_back(q);
    }
    if (d.now_live && (!d.was_live || moved)) {
      plan.shards[d.new_shard].add.push_back(q);
    }
    if (moved) ++plan.migrated;
  }
  return plan;
}

Status ShardRouter::AdoptAssignment(
    const std::vector<std::vector<PropertySet>>& live_by_shard) {
  if (!shard_of_query_.empty() || !groups_.empty()) {
    return Status::Internal("AdoptAssignment requires an untouched router");
  }
  if (live_by_shard.size() != num_shards_) {
    return Status::InvalidArgument(
        "placement lists " + std::to_string(live_by_shard.size()) +
        " shards but the router has " + std::to_string(num_shards_));
  }
  for (uint32_t shard = 0; shard < live_by_shard.size(); ++shard) {
    for (const PropertySet& q : live_by_shard[shard]) {
      if (q.empty()) {
        return Status::InvalidArgument("cannot adopt an empty query");
      }
      if (!shard_of_query_.emplace(q, shard).second) {
        return Status::InvalidArgument("placement repeats a query");
      }
      std::vector<uint32_t> roots;
      for (const PropertyId p : q) {
        const uint32_t root = uf_.Find(p);
        if (groups_.count(root) > 0) roots.push_back(root);
      }
      std::sort(roots.begin(), roots.end());
      roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
      Group merged;
      merged.shard = shard;
      for (const uint32_t root : roots) {
        Group& group = groups_.at(root);
        if (group.shard != shard) {
          return Status::InvalidArgument(
              "placement splits connected queries across shards " +
              std::to_string(group.shard) + " and " + std::to_string(shard));
        }
        merged.queries.insert(merged.queries.end(), group.queries.begin(),
                              group.queries.end());
        groups_.erase(root);
      }
      for (const PropertyId p : q) uf_.Union(p, q.ids().front());
      merged.queries.push_back(q);
      groups_[uf_.Find(q.ids().front())] = std::move(merged);
    }
  }
  return Status::OK();
}

Status ShardRouter::CheckInvariants() const {
  size_t grouped = 0;
  // mc3-lint: unordered-ok(invariant scan; every failure is the same error)
  for (const auto& [root, group] : groups_) {
    if (group.shard >= num_shards_) {
      return Status::Internal("router group placed on an unknown shard");
    }
    for (const PropertySet& q : group.queries) {
      ++grouped;
      const auto it = shard_of_query_.find(q);
      if (it == shard_of_query_.end()) {
        return Status::Internal("router group lists a dead query");
      }
      if (it->second != group.shard) {
        return Status::Internal("query placement disagrees with its group");
      }
      for (const PropertyId p : q) {
        if (uf_.Find(p) != root) {
          return Status::Internal(
              "query property outside its group's connectivity class");
        }
      }
    }
  }
  if (grouped != shard_of_query_.size()) {
    return Status::Internal("router groups do not partition the live set");
  }
  return Status::OK();
}

}  // namespace mc3::online
