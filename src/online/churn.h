// Synthetic churn workloads for the serving engine: a sharded variant of
// the paper's synthetic dataset (disjoint per-domain property pools, the
// shape of an e-commerce catalog with independent categories) and a
// deterministic generator of add/remove batches against a base workload.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace mc3::online {

/// A union of independent synthetic workloads with disjoint property pools
/// (each domain's property ids are offset past the previous domains').
/// Models per-category query logs: the shared-property graph has at least
/// `num_domains` connected components, so updates stay local. Total queries
/// = num_domains * domain.num_queries.
struct ShardedSyntheticConfig {
  size_t num_domains = 100;
  /// Per-domain generator configuration (num_queries is per domain); each
  /// domain d is generated with seed `domain.seed + d`.
  data::SyntheticConfig domain;
};

Instance GenerateShardedSynthetic(const ShardedSyntheticConfig& config);

/// Deterministic add/remove batches over a base instance's query set.
/// Removes sample uniformly from the live queries; adds revive uniformly
/// sampled retired ones (so every added query's classifiers are priced by
/// the base cost table). Until removals have built a retired pool, batches
/// contain fewer adds than requested.
class ChurnGenerator {
 public:
  struct Batch {
    std::vector<PropertySet> add;
    std::vector<PropertySet> remove;
  };

  ChurnGenerator(const Instance& base, uint64_t seed);

  /// Produces the next batch: `removes` queries leave, `adds` return.
  Batch Next(size_t adds, size_t removes);

  size_t NumLive() const { return live_.size(); }
  size_t NumRetired() const { return retired_.size(); }

 private:
  /// Removes and returns a uniform element of `pool` (swap-with-last).
  size_t Draw(std::vector<size_t>* pool);

  std::vector<PropertySet> queries_;
  std::vector<size_t> live_;     ///< indices into queries_
  std::vector<size_t> retired_;  ///< indices into queries_
  Rng rng_;
};

}  // namespace mc3::online

