// Update-trace parsing for the serving engine: a textual log of query
// additions and retirements replayed against an OnlineEngine (the `mc3
// serve` subcommand).
//
// Format, one operation per line:
//
//   # comments and blank lines are skipped
//   + white adidas juventus     add the query {white, adidas, juventus}
//   - sony tv                   remove the query {sony, tv}
//   add,white,adidas            CSV spelling of the same operations
//   remove,sony,tv
//   white adidas                a line with no marker is an add
//                               (raw query-log style)
//
// Properties are separated by whitespace or commas and are matched
// case-sensitively against the base workload's property names (the same
// convention as the instance CSV dialect); unseen names are interned as new
// properties.
#pragma once

#include <string>
#include <vector>

#include "core/property_set.h"
#include "util/status.h"

namespace mc3::online {

/// One trace operation.
struct TraceOp {
  enum class Kind { kAdd, kRemove };
  Kind kind = Kind::kAdd;
  PropertySet query;
  /// 1-based source line the operation was parsed from, so replay errors
  /// can point back into the trace file.
  size_t line = 0;
};

/// A parsed trace plus the property-name table grown while parsing.
struct UpdateTrace {
  std::vector<TraceOp> ops;
  /// The base name table extended with names first seen in the trace
  /// (index = PropertyId). Hand this to the engine via set_property_names.
  std::vector<std::string> property_names;
  size_t skipped_lines = 0;  ///< comments and blank lines
};

/// Parses `lines` against the `base_names` id table (typically the base
/// workload's property names). Fails — naming the 1-based line and the
/// offending token — on a line whose query is empty after removing the
/// marker, on a stray '+'/'-' marker after the first token (almost always
/// two operations joined on one line), and on property names containing
/// control characters.
Result<UpdateTrace> ParseUpdateTrace(const std::vector<std::string>& lines,
                                     std::vector<std::string> base_names);

/// File variant: reads `path` line by line; parse errors are prefixed with
/// the path.
Result<UpdateTrace> LoadUpdateTrace(const std::string& path,
                                    std::vector<std::string> base_names);

/// Renders one operation as a canonical trace line (no trailing newline):
/// an explicit '+' or '-' marker followed by the query's property names in
/// ascending-id order, space-separated. The exact inverse of
/// ParseUpdateTrace for that line. Fails when a property id has no entry in
/// `names` or when a name is not serializable in the line format (empty,
/// contains whitespace/comma/control bytes, or is itself a bare '+'/'-'
/// marker token).
Result<std::string> RenderTraceOp(TraceOp::Kind kind, const PropertySet& query,
                                  const std::vector<std::string>& names);

/// Renders an update batch as trace text: one operation per line, each with
/// a trailing newline, removes before adds (the order ApplyUpdate applies
/// them). This is the shared serializer behind WAL record payloads
/// (src/durability/wal.h) and `mc3 serve --record-trace`; replaying the
/// rendered text through ParseUpdateTrace + ApplyUpdate reproduces the
/// batch exactly.
Result<std::string> RenderUpdateBatch(const std::vector<PropertySet>& add,
                                      const std::vector<PropertySet>& remove,
                                      const std::vector<std::string>& names);

}  // namespace mc3::online

