#include "online/update_trace.h"

#include <cstdio>
#include <unordered_map>

namespace mc3::online {
namespace {

/// Splits on whitespace and commas, dropping empty tokens.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r' || c == ',') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

/// Renders `token` for an error message, masking control characters so the
/// message itself stays printable.
std::string Printable(const std::string& token) {
  std::string out;
  out.reserve(token.size());
  for (const char c : token) {
    out += (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) ? '?' : c;
  }
  return out;
}

bool HasControlCharacter(const std::string& token) {
  for (const char c : token) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) return true;
  }
  return false;
}

Status LineError(size_t ln, const std::string& detail) {
  return Status::InvalidArgument("trace line " + std::to_string(ln + 1) +
                                 ": " + detail);
}

}  // namespace

Result<UpdateTrace> ParseUpdateTrace(const std::vector<std::string>& lines,
                                     std::vector<std::string> base_names) {
  UpdateTrace trace;
  trace.property_names = std::move(base_names);
  std::unordered_map<std::string, PropertyId> interned;
  for (PropertyId id = 0; id < trace.property_names.size(); ++id) {
    interned.emplace(trace.property_names[id], id);
  }

  for (size_t ln = 0; ln < lines.size(); ++ln) {
    std::vector<std::string> tokens = Tokenize(lines[ln]);
    if (tokens.empty() || tokens[0][0] == '#') {
      ++trace.skipped_lines;
      continue;
    }
    TraceOp op;
    size_t first = 0;
    if (tokens[0] == "+" || tokens[0] == "add") {
      first = 1;
    } else if (tokens[0] == "-" || tokens[0] == "remove") {
      op.kind = TraceOp::Kind::kRemove;
      first = 1;
    }
    if (first >= tokens.size()) {
      return LineError(ln, "operation '" + Printable(tokens[0]) +
                               "' without a query");
    }
    std::vector<PropertyId> ids;
    for (size_t t = first; t < tokens.size(); ++t) {
      const std::string& token = tokens[t];
      if (token == "+" || token == "-") {
        return LineError(
            ln, "stray operation marker '" + token + "' after token " +
                    std::to_string(t) +
                    " — one operation per line (is this two lines joined?)");
      }
      if (HasControlCharacter(token)) {
        return LineError(ln, "control character in property name '" +
                                 Printable(token) + "' (token " +
                                 std::to_string(t + 1 - first) + ")");
      }
      const auto [it, inserted] = interned.emplace(
          token, static_cast<PropertyId>(trace.property_names.size()));
      if (inserted) trace.property_names.push_back(token);
      ids.push_back(it->second);
    }
    op.query = PropertySet::FromUnsorted(std::move(ids));
    op.line = ln + 1;
    trace.ops.push_back(std::move(op));
  }
  return trace;
}

namespace {

/// True iff `name` survives Tokenize + marker handling unchanged when it is
/// a non-first token of a line.
bool SerializableName(const std::string& name) {
  if (name.empty() || name == "+" || name == "-") return false;
  for (const char c : name) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ',' ||
        static_cast<unsigned char>(c) < 0x20 || c == 0x7f) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::string> RenderTraceOp(TraceOp::Kind kind, const PropertySet& query,
                                  const std::vector<std::string>& names) {
  if (query.empty()) {
    return Status::InvalidArgument("cannot render an empty query");
  }
  std::string line(kind == TraceOp::Kind::kAdd ? "+" : "-");
  for (const PropertyId id : query) {
    if (id >= names.size()) {
      return Status::InvalidArgument("property id " + std::to_string(id) +
                                     " has no name (table holds " +
                                     std::to_string(names.size()) + ")");
    }
    if (!SerializableName(names[id])) {
      return Status::InvalidArgument(
          "property name '" + Printable(names[id]) +
          "' is not serializable in the trace line format");
    }
    line += ' ';
    line += names[id];
  }
  return line;
}

Result<std::string> RenderUpdateBatch(const std::vector<PropertySet>& add,
                                      const std::vector<PropertySet>& remove,
                                      const std::vector<std::string>& names) {
  std::string text;
  for (const PropertySet& query : remove) {
    auto line = RenderTraceOp(TraceOp::Kind::kRemove, query, names);
    if (!line.ok()) return line.status();
    text += *line;
    text += '\n';
  }
  for (const PropertySet& query : add) {
    auto line = RenderTraceOp(TraceOp::Kind::kAdd, query, names);
    if (!line.ok()) return line.status();
    text += *line;
    text += '\n';
  }
  return text;
}

Result<UpdateTrace> LoadUpdateTrace(const std::string& path,
                                    std::vector<std::string> base_names) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Status::NotFound("cannot open trace file " + path);
  }
  std::vector<std::string> lines;
  std::string current;
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += static_cast<char>(c);
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  std::fclose(in);
  auto trace = ParseUpdateTrace(lines, std::move(base_names));
  if (!trace.ok()) {
    return Status::InvalidArgument(path + ": " + trace.status().message());
  }
  return trace;
}

}  // namespace mc3::online
