#include "online/read_view.h"

#include "core/solution.h"

namespace mc3::online {

EngineReadView BuildReadView(const OnlineEngine& engine, uint64_t version) {
  EngineReadView view;
  view.version = version;
  view.total_cost = engine.TotalCost();
  view.num_queries = engine.NumQueries();
  view.num_components = engine.NumComponents();
  const Solution solution = engine.CurrentSolution();
  std::vector<PropertySet> sorted = solution.Sorted();
  view.classifiers.reserve(sorted.size());
  for (PropertySet& classifier : sorted) {
    const Cost cost = engine.CostOf(classifier);
    view.classifiers.emplace_back(std::move(classifier), cost);
  }
  return view;
}

}  // namespace mc3::online
