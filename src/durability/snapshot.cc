#include "durability/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace mc3::durability {
namespace {

namespace fs = std::filesystem;

/// Parses "snapshot-<20 digits>.json" into the sequence number.
bool ParseSnapshotName(const std::string& name, uint64_t* seq) {
  if (name.size() != 9 + 20 + 5) return false;
  if (name.rfind("snapshot-", 0) != 0) return false;
  if (name.compare(name.size() - 5, 5, ".json") != 0) return false;
  uint64_t value = 0;
  for (size_t i = 9; i < 9 + 20; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

void WriteIdArray(obs::JsonWriter* writer, const PropertySet& set) {
  writer->BeginArray();
  for (const PropertyId id : set.ids()) writer->Int(id);
  writer->EndArray();
}

/// Extracts a property-id array (range-checked against `num_names`) from a
/// snapshot document node.
Result<PropertySet> ParseIdArray(const obs::JsonValue& value, size_t num_names,
                                 const std::string& what) {
  if (!value.is_array()) {
    return Status::InvalidArgument(what + " must be an array of property ids");
  }
  std::vector<PropertyId> ids;
  ids.reserve(value.array.size());
  for (const obs::JsonValue& e : value.array) {
    if (!e.is_number() || e.number != std::floor(e.number) || e.number < 0 ||
        e.number >= static_cast<double>(num_names)) {
      return Status::InvalidArgument(
          what + " holds an id that is not an index into property_names");
    }
    ids.push_back(static_cast<PropertyId>(e.number));
  }
  return PropertySet::FromUnsorted(std::move(ids));
}

Result<uint64_t> ParseSeq(const obs::JsonValue& value) {
  // Doubles are exact through 2^53; a serving process appending a million
  // records per second would take ~285 years to get there.
  if (!value.is_number() || value.number != std::floor(value.number) ||
      value.number < 0 || value.number > 9007199254740992.0) {
    return Status::InvalidArgument("seq must be a non-negative integer");
  }
  return static_cast<uint64_t>(value.number);
}

}  // namespace

std::string SnapshotFileName(uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snapshot-%020llu.json",
                static_cast<unsigned long long>(seq));
  return buf;
}

namespace {

/// Shared v1/v2 renderer: `component_shards` == nullptr renders the legacy
/// mc3.snapshot/1 document, otherwise mc3.snapshot/2 with shard tags.
std::string RenderSnapshotDoc(const online::EngineState& state, uint64_t seq,
                              uint32_t num_shards,
                              const std::vector<uint32_t>* component_shards) {
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema").String(component_shards == nullptr ? kSnapshotSchema
                                                          : kSnapshotSchemaV2);
  writer.Key("seq").Int(seq);
  if (component_shards != nullptr) writer.Key("shards").Int(num_shards);
  writer.Key("property_names").BeginArray();
  for (const std::string& name : state.property_names) writer.String(name);
  writer.EndArray();
  writer.Key("costs").BeginArray();
  // mc3-lint: unordered-ok(EngineState.costs is a sorted vector, not a map)
  for (const auto& [classifier, cost] : state.costs) {
    writer.BeginObject();
    writer.Key("classifier");
    WriteIdArray(&writer, classifier);
    writer.Key("cost").Number(cost);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("components").BeginArray();
  for (size_t i = 0; i < state.components.size(); ++i) {
    const online::EngineState::Component& component = state.components[i];
    writer.BeginObject();
    writer.Key("queries").BeginArray();
    for (const PropertySet& query : component.queries) {
      WriteIdArray(&writer, query);
    }
    writer.EndArray();
    writer.Key("solution").BeginArray();
    for (const PropertySet& classifier : component.solution) {
      WriteIdArray(&writer, classifier);
    }
    writer.EndArray();
    writer.Key("cost").Number(component.cost);
    if (component_shards != nullptr) {
      writer.Key("shard").Int((*component_shards)[i]);
    }
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.Take() + "\n";
}

}  // namespace

std::string RenderSnapshot(const online::EngineState& state, uint64_t seq) {
  return RenderSnapshotDoc(state, seq, 1, nullptr);
}

std::string RenderShardedSnapshot(const online::ShardedState& state,
                                  uint64_t seq) {
  if (state.num_shards == 1) return RenderSnapshot(state.state, seq);
  return RenderSnapshotDoc(state.state, seq, state.num_shards,
                           &state.component_shards);
}

Result<ParsedSnapshot> ParseSnapshot(const std::string& json) {
  auto parsed = obs::ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const obs::JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("snapshot root must be an object");
  }
  const obs::JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      (schema->string != kSnapshotSchema &&
       schema->string != kSnapshotSchemaV2)) {
    return Status::InvalidArgument(std::string("snapshot schema must be '") +
                                   kSnapshotSchema + "' or '" +
                                   kSnapshotSchemaV2 + "'");
  }
  const bool sharded_schema = schema->string == kSnapshotSchemaV2;
  const obs::JsonValue* seq = root.Find("seq");
  if (seq == nullptr) return Status::InvalidArgument("snapshot lacks seq");
  auto seq_value = ParseSeq(*seq);
  if (!seq_value.ok()) return seq_value.status();

  ParsedSnapshot out;
  out.seq = *seq_value;

  if (sharded_schema) {
    const obs::JsonValue* shards = root.Find("shards");
    if (shards == nullptr || !shards->is_number() ||
        shards->number != std::floor(shards->number) || shards->number < 1 ||
        shards->number > 65536) {
      return Status::InvalidArgument(
          "shards must be an integer in [1, 65536]");
    }
    out.num_shards = static_cast<uint32_t>(shards->number);
  }

  const obs::JsonValue* names = root.Find("property_names");
  if (names == nullptr || !names->is_array()) {
    return Status::InvalidArgument("property_names must be an array");
  }
  out.state.property_names.reserve(names->array.size());
  for (const obs::JsonValue& name : names->array) {
    if (!name.is_string()) {
      return Status::InvalidArgument("property_names entries must be strings");
    }
    out.state.property_names.push_back(name.string);
  }
  const size_t num_names = out.state.property_names.size();

  const obs::JsonValue* costs = root.Find("costs");
  // mc3-lint: float-eq-ok(null-pointer check, not a cost comparison)
  if (costs == nullptr || !costs->is_array()) {
    return Status::InvalidArgument("costs must be an array");
  }
  out.state.costs.reserve(costs->array.size());
  for (const obs::JsonValue& entry : costs->array) {
    const obs::JsonValue* classifier =
        entry.is_object() ? entry.Find("classifier") : nullptr;
    const obs::JsonValue* cost =
        entry.is_object() ? entry.Find("cost") : nullptr;
    // mc3-lint: float-eq-ok(null-pointer check, not a cost comparison)
    if (classifier == nullptr || cost == nullptr || !cost->is_number() ||
        !std::isfinite(cost->number) || cost->number < 0) {
      return Status::InvalidArgument(
          "costs entries must be {classifier, cost} with a finite "
          "non-negative cost");
    }
    auto set = ParseIdArray(*classifier, num_names, "costs.classifier");
    if (!set.ok()) return set.status();
    out.state.costs.emplace_back(std::move(*set), cost->number);
  }

  const obs::JsonValue* components = root.Find("components");
  if (components == nullptr || !components->is_array()) {
    return Status::InvalidArgument("components must be an array");
  }
  out.state.components.reserve(components->array.size());
  for (const obs::JsonValue& entry : components->array) {
    const obs::JsonValue* queries =
        entry.is_object() ? entry.Find("queries") : nullptr;
    const obs::JsonValue* solution =
        entry.is_object() ? entry.Find("solution") : nullptr;
    const obs::JsonValue* cost =
        entry.is_object() ? entry.Find("cost") : nullptr;
    if (queries == nullptr || !queries->is_array() || solution == nullptr ||
        // mc3-lint: float-eq-ok(null-pointer check, not a cost comparison)
        !solution->is_array() || cost == nullptr || !cost->is_number() ||
        !std::isfinite(cost->number) || cost->number < 0) {
      return Status::InvalidArgument(
          "components entries must be {queries, solution, cost} with a "
          "finite non-negative cost");
    }
    uint32_t shard = 0;
    if (sharded_schema) {
      const obs::JsonValue* shard_tag = entry.Find("shard");
      if (shard_tag == nullptr || !shard_tag->is_number() ||
          shard_tag->number != std::floor(shard_tag->number) ||
          shard_tag->number < 0 ||
          shard_tag->number >= static_cast<double>(out.num_shards)) {
        return Status::InvalidArgument(
            "components entries must carry a shard index below 'shards'");
      }
      shard = static_cast<uint32_t>(shard_tag->number);
    }
    online::EngineState::Component component;
    component.cost = cost->number;
    component.queries.reserve(queries->array.size());
    for (const obs::JsonValue& query : queries->array) {
      auto set = ParseIdArray(query, num_names, "components.queries");
      if (!set.ok()) return set.status();
      component.queries.push_back(std::move(*set));
    }
    component.solution.reserve(solution->array.size());
    for (const obs::JsonValue& classifier : solution->array) {
      auto set = ParseIdArray(classifier, num_names, "components.solution");
      if (!set.ok()) return set.status();
      component.solution.push_back(std::move(*set));
    }
    out.state.components.push_back(std::move(component));
    out.component_shards.push_back(shard);
  }
  return out;
}

Status ValidateSnapshotJson(const std::string& json) {
  auto parsed = ParseSnapshot(json);
  if (!parsed.ok()) return parsed.status();
  return Status::OK();
}

namespace {

/// Publishes an already-rendered snapshot document atomically.
Result<uint64_t> PublishSnapshotDocument(const std::string& dir,
                                         std::string document, uint64_t seq);

}  // namespace

Result<uint64_t> WriteSnapshotFile(const std::string& dir,
                                   const online::EngineState& state,
                                   uint64_t seq) {
  return PublishSnapshotDocument(dir, RenderSnapshot(state, seq), seq);
}

Result<uint64_t> WriteSnapshotFile(const std::string& dir,
                                   const online::ShardedState& state,
                                   uint64_t seq) {
  return PublishSnapshotDocument(dir, RenderShardedSnapshot(state, seq), seq);
}

namespace {

Result<uint64_t> PublishSnapshotDocument(const std::string& dir,
                                         std::string document, uint64_t seq) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create " + dir + ": " + ec.message());

  {
    Status valid = ValidateSnapshotJson(document);
    if (!valid.ok()) {
      return Status::Internal("rendered snapshot fails its own schema: " +
                              valid.message());
    }
  }

  const std::string path = dir + "/" + SnapshotFileName(seq);
  const std::string tmp = path + ".tmp";
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0) return Status::IOError("cannot create " + tmp);
    size_t off = 0;
    while (off < document.size()) {
      const ssize_t n =
          ::write(fd, document.data() + off, document.size() - off);
      if (n < 0) {
        ::close(fd);
        return Status::IOError("write failed on " + tmp);
      }
      off += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      return Status::IOError("fsync failed on " + tmp);
    }
    ::close(fd);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("cannot publish " + path + ": " + ec.message());
  }
  // Make the rename itself durable: fsync the directory entry.
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return static_cast<uint64_t>(document.size());
}

}  // namespace

Result<LoadedSnapshot> LoadLatestSnapshot(const std::string& dir) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) {
    return Status::NotFound("no snapshot directory " + dir);
  }
  std::vector<std::pair<uint64_t, std::string>> found;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t seq = 0;
    const std::string name = entry.path().filename().string();
    if (ParseSnapshotName(name, &seq)) found.emplace_back(seq, name);
  }
  if (ec) return Status::IOError("cannot list " + dir + ": " + ec.message());
  std::sort(found.begin(), found.end());

  LoadedSnapshot out;
  for (size_t i = found.size(); i-- > 0;) {
    const std::string path = dir + "/" + found[i].second;
    std::FILE* in = std::fopen(path.c_str(), "rb");
    if (in == nullptr) {
      ++out.skipped_invalid;
      continue;
    }
    std::string bytes;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) bytes.append(buf, n);
    const bool bad = std::ferror(in) != 0;
    std::fclose(in);
    if (bad) {
      ++out.skipped_invalid;
      continue;
    }
    auto parsed = ParseSnapshot(bytes);
    if (!parsed.ok()) {
      ++out.skipped_invalid;
      continue;
    }
    if (parsed->seq != found[i].first) {
      // The embedded seq is authoritative; a mismatched name means the file
      // was tampered with or mis-copied.
      ++out.skipped_invalid;
      continue;
    }
    out.seq = parsed->seq;
    out.state = std::move(parsed->state);
    out.num_shards = parsed->num_shards;
    out.component_shards = std::move(parsed->component_shards);
    out.path = path;
    return out;
  }
  return Status::NotFound("no valid snapshot in " + dir);
}

Result<uint32_t> ProbeSnapshotShardCount(const std::string& dir) {
  auto loaded = LoadLatestSnapshot(dir);
  if (!loaded.ok()) return loaded.status();
  return loaded->num_shards;
}

}  // namespace mc3::durability
