// Write-ahead update log for the serving engine (docs/durability.md).
//
// Every admitted update batch is appended as one record whose payload is
// the textual `update_trace` rendering of the batch
// (online::RenderUpdateBatch) — the same format `mc3 serve --trace`
// replays — wrapped in a binary frame:
//
//   [u32 payload_len][u32 crc32(payload)][u64 seq]  payload bytes
//
// all little-endian. Sequence numbers are monotonic from 1 and never reused
// across segments or restarts. Records live in segment files named
// `wal-<first-seq>.log` (20-digit zero-padded), each starting with the
// 8-byte magic "MC3WAL1\n"; a rotation (size threshold or checkpoint)
// starts a fresh segment at the next sequence number.
//
// Durability model: Append() never blocks on the disk. In the default
// kGrouped mode a dedicated committer thread drains whatever accumulated
// while the previous fsync was in flight and commits it with a single
// write+fsync (classic group commit); the engine hot path only pays an
// in-memory enqueue. Responses are therefore acknowledged *before* the
// record is durable — a crash can lose the last group (bounded by the
// group window), never reorder or corrupt. A torn final record (crash mid
// write) is detected by length/CRC on the next open and truncated away;
// recovery replays the surviving prefix.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace mc3::durability {

/// Magic bytes opening every segment file.
inline constexpr char kWalMagic[8] = {'M', 'C', '3', 'W', 'A', 'L', '1', '\n'};
/// Frame header bytes in front of every payload (len + crc + seq).
inline constexpr size_t kWalHeaderBytes = 4 + 4 + 8;
/// Sanity cap on a single record payload; larger lengths in a frame header
/// are treated as corruption.
inline constexpr uint32_t kWalMaxPayloadBytes = 64u << 20;

struct WalOptions {
  /// How appended records reach the disk.
  enum class SyncPolicy {
    kGrouped,    ///< background committer thread, group-commit fsync batches
    kImmediate,  ///< write + fsync inline in Append (deterministic; tests)
    kNone,       ///< write inline, never fsync (throwaway/bench data)
  };
  SyncPolicy sync = SyncPolicy::kGrouped;

  /// kGrouped: after waking for a non-empty queue the committer waits up to
  /// this long for more records before fsyncing the batch. 0 commits
  /// whatever is pending immediately — batches still form naturally while
  /// an fsync is in flight.
  double group_window_ms = 0;

  /// Rotate to a fresh segment once the current one exceeds this many
  /// bytes. 0 = never rotate on size (checkpoints rotate explicitly).
  uint64_t segment_bytes = 64ull << 20;

  /// Optional durability hook: invoked with the new durable sequence number
  /// every time `durable_seq` advances (after the fsync — on the committer
  /// thread under kGrouped, inline in Append under kImmediate, never under
  /// kNone). Runs outside the writer lock, so it may take subscriber locks;
  /// it must not call back into the writer. The serving telemetry layer uses
  /// it to timestamp the wal_durable stage of traced requests.
  std::function<void(uint64_t durable_seq)> on_durable;
};

/// Point-in-time writer statistics (also served by the `wal_stats` protocol
/// verb and mirrored into the obs metrics registry).
struct WalWriterStats {
  uint64_t last_seq = 0;          ///< last appended sequence number
  uint64_t durable_seq = 0;       ///< last fsynced sequence number
  uint64_t records_appended = 0;  ///< records appended by this writer
  uint64_t bytes_appended = 0;    ///< frame + payload bytes appended
  uint64_t bytes_fsynced = 0;     ///< bytes covered by completed fsyncs
  uint64_t syncs = 0;             ///< fsync calls issued
  uint64_t group_commit_max = 0;  ///< largest records-per-fsync batch
  uint64_t segments = 0;          ///< live segment files
  /// Torn final record found (and truncated) when the writer opened.
  bool torn_tail_on_open = false;
};

/// One decoded record.
struct WalRecord {
  uint64_t seq = 0;
  std::string payload;
};

/// Result of scanning a WAL directory.
struct WalScan {
  std::vector<WalRecord> records;  ///< valid records, ascending seq
  uint64_t last_seq = 0;           ///< 0 when empty
  /// The final record was torn (truncated frame, short payload or CRC
  /// mismatch) and was dropped; `torn_detail` names the segment and offset.
  bool torn_tail = false;
  std::string torn_detail;
};

/// Reads every record with seq > `after_seq` from the segments of `dir`,
/// in sequence order. Tolerates a torn final record (reported via the scan,
/// not an error); fails on structural corruption anywhere else — bad magic,
/// a non-contiguous sequence jump, or garbage between valid records.
Result<WalScan> ReadWal(const std::string& dir, uint64_t after_seq);

/// Segment file names of `dir` (no path), sorted by first sequence number.
Result<std::vector<std::string>> ListWalSegments(const std::string& dir);

/// Appender. Thread-safe; one writer per directory (the serving process).
class WalWriter {
 public:
  /// Opens `dir` for appending (creating it if missing), scans existing
  /// segments for the last sequence number and truncates a torn final
  /// record so new appends extend the valid prefix.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& dir,
                                                 const WalOptions& options);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record, assigning the next sequence number (returned).
  /// kGrouped: enqueues for the committer and returns without touching the
  /// disk; otherwise writes (and per policy fsyncs) inline.
  Result<uint64_t> Append(std::string payload);

  /// Blocks until every record appended so far is durable (no-op under
  /// kNone, where durability is explicitly waived).
  Status Sync();

  /// Checkpoint hook: makes everything durable, starts a fresh segment at
  /// the next sequence number and — unless `keep_segments` — deletes the
  /// segments whose records are all <= `snapshot_seq` (their effects are
  /// captured by the snapshot).
  Status Rotate(uint64_t snapshot_seq, bool keep_segments);

  /// Fast-forwards the sequence counter to at least `floor` (no-op when
  /// already past it), rotating so the next append lands in a segment named
  /// `floor + 1`. Recovery calls this when the latest snapshot is newer
  /// than the whole WAL (its covering segments were rotated away or lost) —
  /// sequences below the snapshot must never be reassigned.
  Status EnsureSeqFloor(uint64_t floor);

  WalWriterStats Stats() const;

  /// Stops the committer and closes the segment (idempotent; the
  /// destructor calls it). Pending records are committed first.
  Status Close();

 private:
  WalWriter(std::string dir, WalOptions options);

  /// Opens (creating) the segment whose first record is `first_seq`.
  Status OpenSegment(uint64_t first_seq) MC3_REQUIRES(mu_);
  /// Appends `frames` to the segment and optionally fsyncs. Touches the
  /// mu_-guarded fd_ under a protocol the static analysis cannot express:
  /// the inline policies call it with mu_ held, while the group committer
  /// deliberately drops the lock around the slow disk write (it is the only
  /// thread touching the fd in that mode, and bookkeeping re-locks).
  Status WriteAndMaybeSync(const std::string& frames, bool sync)
      MC3_NO_THREAD_SAFETY_ANALYSIS;
  void CommitterLoop();

  // mc3-lint: guard-ok(fixed at construction, immutable afterwards)
  std::string dir_;
  // mc3-lint: guard-ok(fixed at construction, immutable afterwards)
  WalOptions options_;

  mutable util::Mutex mu_;
  util::CondVar work_cv_;     ///< committer: pending or stopping
  util::CondVar durable_cv_;  ///< Sync waiters: durable_seq_ moved
  /// Encoded frames awaiting commit.
  std::string pending_ MC3_GUARDED_BY(mu_);
  uint64_t pending_records_ MC3_GUARDED_BY(mu_) = 0;
  uint64_t pending_last_seq_ MC3_GUARDED_BY(mu_) = 0;
  bool stopping_ MC3_GUARDED_BY(mu_) = false;
  bool closed_ MC3_GUARDED_BY(mu_) = false;
  /// Sticky first disk failure.
  Status committer_error_ MC3_GUARDED_BY(mu_);

  int fd_ MC3_GUARDED_BY(mu_) = -1;
  uint64_t segment_first_seq_ MC3_GUARDED_BY(mu_) = 1;
  uint64_t segment_bytes_written_ MC3_GUARDED_BY(mu_) = 0;

  uint64_t last_seq_ MC3_GUARDED_BY(mu_) = 0;
  uint64_t durable_seq_ MC3_GUARDED_BY(mu_) = 0;
  WalWriterStats stats_ MC3_GUARDED_BY(mu_);

  // mc3-lint: guard-ok(started once by Open, joined only by Close)
  std::thread committer_;
};

}  // namespace mc3::durability
