// DurabilityManager: the serving engine's persistence facade
// (docs/durability.md). Owns a data directory holding WAL segments
// (src/durability/wal.h) and snapshots (src/durability/snapshot.h) and
// implements the recovery contract:
//
//   recovered state = latest valid snapshot
//                   + replay of WAL records with seq > snapshot seq
//
// which equals the state of the crashed process up to the acknowledged
// batches that were not yet durable (the group-commit window). The engine's
// determinism guarantee (docs/online.md) makes the equality byte-exact:
// replaying the same admitted batches from the same base always reproduces
// the same solution store.
//
// Lifecycle: Open -> Recover (exactly once, before any logging) ->
// LogBatch per admitted update -> Checkpoint when the policy fires or the
// `checkpoint` verb asks -> Close. The engine worker is the only caller of
// LogBatch/Checkpoint, mirroring its exclusive ownership of the engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "online/online_engine.h"
#include "online/sharded_engine.h"
#include "util/status.h"

namespace mc3::durability {

struct DurabilityOptions {
  /// Directory holding WAL segments and snapshots. Created if missing.
  std::string data_dir;

  WalOptions wal;

  /// Take a snapshot after this many logged update batches (0 = only on
  /// demand via the `checkpoint` verb).
  uint64_t checkpoint_every_updates = 0;
  /// ... and/or when this many seconds have passed since the last
  /// checkpoint and at least one batch was logged (0 = off).
  double checkpoint_interval_s = 0;

  /// Keep WAL segments that a checkpoint made redundant instead of deleting
  /// them (debugging / audit: `mc3 wal dump` then sees the full history).
  bool keep_segments = false;
};

/// What Recover did, surfaced as obs metrics (`durability.snapshot_seq`,
/// `durability.wal_records_replayed`, `durability.recovery_ms` gauges/
/// counters) and through the `wal_stats` verb.
struct RecoveryStats {
  bool snapshot_loaded = false;
  uint64_t snapshot_seq = 0;        ///< 0 when no snapshot was found
  uint64_t wal_records_replayed = 0;
  uint64_t wal_last_seq = 0;        ///< last valid sequence found on disk
  bool torn_tail = false;           ///< a torn final record was truncated
  size_t snapshots_skipped = 0;     ///< invalid snapshot files ignored
  double recovery_seconds = 0;
};

/// Outcome of one checkpoint.
struct CheckpointInfo {
  uint64_t seq = 0;       ///< WAL sequence the snapshot includes
  std::string path;       ///< published snapshot file
  uint64_t bytes = 0;     ///< snapshot document size
  double seconds = 0;     ///< sync + render + publish + rotate wall time
};

class DurabilityManager {
 public:
  /// Opens `options.data_dir` (creating it if missing) and the WAL writer,
  /// truncating a torn final record. No engine state is touched yet.
  static Result<std::unique_ptr<DurabilityManager>> Open(
      DurabilityOptions options);

  /// Restores engine state: loads the latest valid snapshot into `engine`
  /// (which must be untouched) or, when none exists, initializes it from
  /// `base`; then replays the WAL tail past the snapshot's sequence.
  /// Classifiers unknown at replay time are priced exactly like the live
  /// server prices them (data::EstimateCosts with `default_cost` as the
  /// per-property difficulty; negative disables pricing). Call exactly
  /// once, before any LogBatch. When a snapshot was loaded, `base` is
  /// ignored — its content is part of the snapshot.
  Result<RecoveryStats> Recover(const Instance& base, double default_cost,
                                online::OnlineEngine* engine);

  /// Same recovery contract for a sharded engine: the snapshot's recorded
  /// shard layout is restored verbatim (InvalidArgument when it disagrees
  /// with `engine->num_shards()` — restart with a matching --shards or let
  /// `mc3 recover` probe the snapshot), then the WAL tail replays through
  /// the shard router. The WAL itself is shard-agnostic (docs/durability.md
  /// explains why a single log is kept), so the same log replays
  /// byte-identically into any shard layout.
  Result<RecoveryStats> Recover(const Instance& base, double default_cost,
                                online::ShardedEngine* engine);

  /// Appends one admitted update batch; returns its sequence number.
  Result<uint64_t> LogBatch(const std::vector<PropertySet>& add,
                            const std::vector<PropertySet>& remove,
                            const std::vector<std::string>& names);
  /// Same, for a batch already rendered through RenderUpdateBatch (callers
  /// that also record a debug trace render once and share the text).
  Result<uint64_t> LogPayload(std::string payload);

  /// True when the checkpoint policy (count and/or interval) asks for a
  /// snapshot now. Resets only when Checkpoint succeeds.
  bool ShouldCheckpoint() const;

  /// Publishes a snapshot of `state` covering every logged batch: WAL sync
  /// barrier, atomic snapshot write, segment rotation. `state` must be the
  /// engine's export under the same exclusion that serializes LogBatch
  /// (the engine worker), so the captured WAL sequence is exact.
  Result<CheckpointInfo> Checkpoint(const online::EngineState& state);
  /// Same, for a sharded export: writes mc3.snapshot/2 with shard tags
  /// (plain v1 when the layout has a single shard).
  Result<CheckpointInfo> Checkpoint(const online::ShardedState& state);

  WalWriterStats GetWalStats() const;
  const RecoveryStats& recovery() const { return recovery_; }
  const DurabilityOptions& options() const { return options_; }

  /// Syncs and closes the WAL (idempotent; destruction closes too).
  Status Close();

 private:
  explicit DurabilityManager(DurabilityOptions options);

  /// Shared recovery core: `import` restores a loaded snapshot into
  /// `engine`; the rest (initialize-from-base, seq floor, WAL replay,
  /// pricing) is identical for single and sharded engines. Defined in
  /// durability.cc; instantiated only there.
  template <typename Engine, typename ImportFn>
  Result<RecoveryStats> RecoverWith(const Instance& base, double default_cost,
                                    Engine* engine, const ImportFn& import);

  /// Shared checkpoint core (the WriteSnapshotFile overload picks the
  /// schema).
  template <typename StateT>
  Result<CheckpointInfo> CheckpointWith(const StateT& state);

  DurabilityOptions options_;
  std::unique_ptr<WalWriter> wal_;
  RecoveryStats recovery_;
  bool recovered_ = false;

  uint64_t batches_since_checkpoint_ = 0;
  /// steady_clock seconds at the last checkpoint (or Open).
  double last_checkpoint_at_ = 0;
};

}  // namespace mc3::durability
