// Engine snapshots: full OnlineEngine state serialized as a
// schema-validated JSON document (`mc3.snapshot/1`), written atomically so
// a crash mid-checkpoint can never leave a half-written file in the way of
// recovery (docs/durability.md).
//
// Document layout:
//
//   {
//     "schema": "mc3.snapshot/1",
//     "seq": 42,                     // WAL sequence the state includes
//     "property_names": ["a", ...],  // index = PropertyId
//     "costs": [ {"classifier": [0, 2], "cost": 1.5}, ... ],
//     "components": [
//       {"queries": [[0, 1]], "solution": [[0], [1]], "cost": 2.5}, ...
//     ]
//   }
//
// Queries and classifiers are arrays of property ids into
// `property_names`, in the canonical order EngineState defines — rendering
// an imported snapshot reproduces it byte for byte (json_test and
// durability_test pin this).
//
// A sharded engine (src/online/sharded_engine.h) snapshots through the
// `mc3.snapshot/2` schema, which is v1 plus a top-level `"shards": N` and a
// per-component `"shard": s` tag recording the owning engine shard, so
// recovery restores the exact same placement. A 1-shard engine keeps
// writing plain v1 documents — its snapshots stay byte-identical to the
// pre-sharding format — and the loader accepts either schema (a v1
// document is a 1-shard layout with every component on shard 0).
//
// Files are named `snapshot-<20-digit seq>.json`. Writing goes through a
// `.tmp` sibling + fsync + rename + directory fsync; loading picks the
// newest file that parses and validates, skipping corrupt ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "online/online_engine.h"
#include "online/sharded_engine.h"
#include "util/status.h"

namespace mc3::durability {

/// Schema identifier embedded in every single-engine snapshot document.
inline constexpr char kSnapshotSchema[] = "mc3.snapshot/1";
/// Schema identifier for sharded-layout snapshots (shards > 1).
inline constexpr char kSnapshotSchemaV2[] = "mc3.snapshot/2";

/// File name for the snapshot at `seq` (no directory).
std::string SnapshotFileName(uint64_t seq);

/// Renders `state` as an mc3.snapshot/1 document (pretty-printed, trailing
/// newline). Deterministic: equal states render to equal bytes.
std::string RenderSnapshot(const online::EngineState& state, uint64_t seq);

/// Renders a sharded export: the legacy v1 document when
/// `state.num_shards == 1` (byte-identical to RenderSnapshot), an
/// mc3.snapshot/2 document with shard tags otherwise.
std::string RenderShardedSnapshot(const online::ShardedState& state,
                                  uint64_t seq);

/// A parsed snapshot document. A v1 document parses as a 1-shard layout
/// with every component on shard 0, so `num_shards`/`component_shards`
/// are meaningful for either schema.
struct ParsedSnapshot {
  uint64_t seq = 0;
  online::EngineState state;
  uint32_t num_shards = 1;
  /// Owning shard per state.components entry (parallel array).
  std::vector<uint32_t> component_shards;

  /// The parsed layout as a sharded-engine import.
  online::ShardedState ToShardedState() const {
    online::ShardedState out;
    out.num_shards = num_shards;
    out.state = state;
    out.component_shards = component_shards;
    return out;
  }
};

/// Parses and structurally validates a snapshot document: schema string,
/// integral non-negative seq, every property id in range of
/// `property_names`, finite non-negative costs. Engine-level integrity
/// (disjoint components, coverage) is checked by ImportState /
/// CheckInvariants when the state is restored.
Result<ParsedSnapshot> ParseSnapshot(const std::string& json);

/// Schema validation only (a parse whose value is discarded); the writer
/// self-checks every document through this before publishing it.
Status ValidateSnapshotJson(const std::string& json);

/// Atomically publishes the snapshot of `state` at `seq` into `dir`
/// (created if missing): render -> validate -> write `.tmp` -> fsync ->
/// rename -> fsync directory. Returns the published file's byte size.
Result<uint64_t> WriteSnapshotFile(const std::string& dir,
                                   const online::EngineState& state,
                                   uint64_t seq);
/// Same, for a sharded export (v1 document when num_shards == 1).
Result<uint64_t> WriteSnapshotFile(const std::string& dir,
                                   const online::ShardedState& state,
                                   uint64_t seq);

/// A snapshot loaded from disk.
struct LoadedSnapshot {
  uint64_t seq = 0;
  online::EngineState state;
  uint32_t num_shards = 1;
  std::vector<uint32_t> component_shards;
  std::string path;
  /// Newer snapshot files that failed to parse/validate and were skipped
  /// (a crash mid-rename cannot produce these, but disk rot can).
  size_t skipped_invalid = 0;

  /// The loaded layout as a sharded-engine import.
  online::ShardedState ToShardedState() const {
    online::ShardedState out;
    out.num_shards = num_shards;
    out.state = state;
    out.component_shards = component_shards;
    return out;
  }
};

/// Loads the newest valid snapshot of `dir`; NotFound when the directory
/// holds no (valid) snapshot.
Result<LoadedSnapshot> LoadLatestSnapshot(const std::string& dir);

/// Shard count recorded by the newest valid snapshot of `dir` (1 for v1
/// documents); NotFound when no valid snapshot exists. `mc3 recover` uses
/// this to adopt the snapshot's layout when --shards is not forced.
Result<uint32_t> ProbeSnapshotShardCount(const std::string& dir);

}  // namespace mc3::durability
