#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "obs/metrics.h"
#include "util/crc32.h"

namespace mc3::durability {
namespace {

namespace fs = std::filesystem;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

/// Encodes one framed record.
std::string EncodeRecord(uint64_t seq, const std::string& payload) {
  std::string frame;
  frame.reserve(kWalHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  PutU64(&frame, seq);
  frame += payload;
  return frame;
}

/// Parses "wal-<20 digits>.log" into the first sequence number.
bool ParseSegmentName(const std::string& name, uint64_t* first_seq) {
  if (name.size() != 4 + 20 + 4) return false;
  if (name.rfind("wal-", 0) != 0) return false;
  if (name.compare(name.size() - 4, 4, ".log") != 0) return false;
  uint64_t seq = 0;
  for (size_t i = 4; i < 4 + 20; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *first_seq = seq;
  return true;
}

std::string SegmentName(uint64_t first_seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(first_seq));
  return buf;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return Status::IOError("cannot open " + path);
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) bytes.append(buf, n);
  const bool bad = std::ferror(in) != 0;
  std::fclose(in);
  if (bad) return Status::IOError("read failed on " + path);
  return bytes;
}

/// Outcome of decoding one segment's bytes.
struct SegmentScan {
  std::vector<WalRecord> records;
  size_t valid_bytes = 0;  ///< prefix length ending after the last record
  bool torn_tail = false;
  std::string torn_detail;
};

/// Decodes `bytes` of segment `name`. A truncated or CRC-corrupt record
/// terminates the scan as a torn tail at that offset; only the caller knows
/// whether that is tolerable (last segment) or mid-history corruption.
Result<SegmentScan> ScanSegment(const std::string& name,
                                const std::string& bytes) {
  SegmentScan scan;
  if (bytes.size() < sizeof(kWalMagic)) {
    if (bytes.empty()) {
      // A crash can leave a zero-byte segment between creat and the magic
      // write; treat it as a torn (empty) tail.
      scan.torn_tail = true;
      scan.torn_detail = name + ": empty segment (no magic)";
      return scan;
    }
    scan.torn_tail = true;
    scan.torn_detail = name + ": truncated magic";
    return scan;
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::IOError(name + ": bad segment magic");
  }
  size_t off = sizeof(kWalMagic);
  scan.valid_bytes = off;
  while (off < bytes.size()) {
    if (bytes.size() - off < kWalHeaderBytes) {
      scan.torn_tail = true;
      scan.torn_detail = name + ": truncated frame header at offset " +
                         std::to_string(off);
      break;
    }
    const uint32_t len = GetU32(bytes.data() + off);
    const uint32_t crc = GetU32(bytes.data() + off + 4);
    const uint64_t seq = GetU64(bytes.data() + off + 8);
    if (len > kWalMaxPayloadBytes) {
      scan.torn_tail = true;
      scan.torn_detail = name + ": implausible payload length " +
                         std::to_string(len) + " at offset " +
                         std::to_string(off);
      break;
    }
    if (bytes.size() - off - kWalHeaderBytes < len) {
      scan.torn_tail = true;
      scan.torn_detail =
          name + ": truncated payload at offset " + std::to_string(off);
      break;
    }
    std::string payload = bytes.substr(off + kWalHeaderBytes, len);
    if (Crc32(payload.data(), payload.size()) != crc) {
      scan.torn_tail = true;
      scan.torn_detail =
          name + ": CRC mismatch at offset " + std::to_string(off) +
          " (seq " + std::to_string(seq) + ")";
      break;
    }
    scan.records.push_back(WalRecord{seq, std::move(payload)});
    off += kWalHeaderBytes + len;
    scan.valid_bytes = off;
  }
  return scan;
}

/// Scans all segments of `dir`, enforcing the cross-segment contract:
/// sequence numbers strictly contiguous, torn tails only in the final
/// segment. A gap *at a segment boundary* whose left side ends at or below
/// `boundary_gap_floor` is tolerated — that layout arises legitimately when
/// a snapshot outlives its covering segments (WalWriter::EnsureSeqFloor);
/// the dropped range is covered by the snapshot. Readers pass the snapshot
/// seq; the writer (which cannot know it) passes UINT64_MAX.
struct DirScan {
  WalScan scan;
  std::vector<std::string> segments;  ///< sorted names
  size_t last_segment_valid_bytes = 0;
};

Result<DirScan> ScanDir(const std::string& dir, uint64_t boundary_gap_floor) {
  DirScan out;
  auto segments = ListWalSegments(dir);
  if (!segments.ok()) return segments.status();
  out.segments = std::move(*segments);
  uint64_t expected_seq = 0;  // 0 = not yet pinned
  for (size_t i = 0; i < out.segments.size(); ++i) {
    const std::string& name = out.segments[i];
    const bool last = i + 1 == out.segments.size();
    auto bytes = ReadFileBytes(dir + "/" + name);
    if (!bytes.ok()) return bytes.status();
    auto seg = ScanSegment(name, *bytes);
    if (!seg.ok()) return seg.status();
    if (seg->torn_tail && !last) {
      return Status::IOError("mid-history corruption, not a torn tail: " +
                             seg->torn_detail);
    }
    uint64_t name_seq = 0;
    ParseSegmentName(name, &name_seq);
    if (!seg->records.empty() && seg->records.front().seq != name_seq) {
      return Status::IOError(name + ": first record seq " +
                             std::to_string(seg->records.front().seq) +
                             " does not match the segment name");
    }
    bool at_boundary = true;
    for (WalRecord& rec : seg->records) {
      if (expected_seq != 0 && rec.seq != expected_seq) {
        const bool covered_gap = at_boundary && rec.seq > expected_seq &&
                                 expected_seq - 1 <= boundary_gap_floor;
        if (!covered_gap) {
          return Status::IOError(name + ": sequence gap (expected " +
                                 std::to_string(expected_seq) + ", found " +
                                 std::to_string(rec.seq) + ")");
        }
      }
      at_boundary = false;
      expected_seq = rec.seq + 1;
      out.scan.records.push_back(std::move(rec));
    }
    // An empty segment (created by a rotation whose history was later
    // dropped, or torn before any record) still pins the sequence floor:
    // its name is the next sequence to assign.
    if (seg->records.empty()) expected_seq = std::max(expected_seq, name_seq);
    if (last) {
      out.last_segment_valid_bytes = seg->valid_bytes;
      out.scan.torn_tail = seg->torn_tail;
      out.scan.torn_detail = seg->torn_detail;
    }
  }
  if (expected_seq > 0) out.scan.last_seq = expected_seq - 1;
  return out;
}

void NoteAppend(uint64_t bytes) {
  static obs::Counter& records = obs::MetricsRegistry::Global().GetCounter(
      "durability.wal_records_appended");
  static obs::Counter& appended = obs::MetricsRegistry::Global().GetCounter(
      "durability.wal_bytes_appended");
  records.Add();
  appended.Add(bytes);
}

void NoteSync(uint64_t bytes, uint64_t records) {
  static obs::Counter& syncs =
      obs::MetricsRegistry::Global().GetCounter("durability.wal_syncs");
  static obs::Counter& fsynced = obs::MetricsRegistry::Global().GetCounter(
      "durability.wal_bytes_fsynced");
  static obs::Histogram& batch = obs::MetricsRegistry::Global().GetHistogram(
      "durability.group_commit_records");
  syncs.Add();
  fsynced.Add(bytes);
  batch.Record(static_cast<double>(records));
}

}  // namespace

Result<std::vector<std::string>> ListWalSegments(const std::string& dir) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) return std::vector<std::string>{};
  std::vector<std::pair<uint64_t, std::string>> found;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t first_seq = 0;
    const std::string name = entry.path().filename().string();
    if (ParseSegmentName(name, &first_seq)) found.emplace_back(first_seq, name);
  }
  if (ec) return Status::IOError("cannot list " + dir + ": " + ec.message());
  std::sort(found.begin(), found.end());
  std::vector<std::string> names;
  names.reserve(found.size());
  for (auto& [seq, name] : found) names.push_back(std::move(name));
  return names;
}

Result<WalScan> ReadWal(const std::string& dir, uint64_t after_seq) {
  auto scanned = ScanDir(dir, /*boundary_gap_floor=*/after_seq);
  if (!scanned.ok()) return scanned.status();
  WalScan scan = std::move(scanned->scan);
  if (after_seq > 0) {
    auto it = std::partition_point(
        scan.records.begin(), scan.records.end(),
        [after_seq](const WalRecord& r) { return r.seq <= after_seq; });
    scan.records.erase(scan.records.begin(), it);
  }
  return scan;
}

WalWriter::WalWriter(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& dir,
                                                   const WalOptions& options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create " + dir + ": " + ec.message());

  auto scanned = ScanDir(dir, /*boundary_gap_floor=*/UINT64_MAX);
  if (!scanned.ok()) return scanned.status();

  // mc3-lint: new-delete-ok(private ctor; owned by unique_ptr at birth)
  std::unique_ptr<WalWriter> writer(new WalWriter(dir, options));
  {
    // The committer thread does not exist yet; the (uncontended) lock is
    // for the thread-safety analysis of the guarded fields below.
    util::MutexLock lock(writer->mu_);
    writer->last_seq_ = scanned->scan.last_seq;
    writer->stats_.torn_tail_on_open = scanned->scan.torn_tail;
    if (!scanned->segments.empty()) {
      // Resume the last segment, truncating a torn tail so appends extend
      // the valid prefix.
      const std::string last_name = scanned->segments.back();
      const std::string path = dir + "/" + last_name;
      if (scanned->scan.torn_tail) {
        fs::resize_file(path, scanned->last_segment_valid_bytes, ec);
        if (ec) {
          return Status::IOError("cannot truncate torn tail of " + path +
                                 ": " + ec.message());
        }
      }
      // The truncation above can leave a zero-byte segment (torn before the
      // magic landed); reopening it via OpenSegment rewrites the magic.
      uint64_t name_seq = 0;
      ParseSegmentName(last_name, &name_seq);
      if (scanned->last_segment_valid_bytes < sizeof(kWalMagic)) {
        fs::remove(path, ec);
        MC3_RETURN_IF_ERROR(writer->OpenSegment(name_seq));
      } else {
        writer->fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
        if (writer->fd_ < 0) {
          return Status::IOError("cannot open " + path + " for append");
        }
        writer->segment_first_seq_ = name_seq;
        writer->segment_bytes_written_ = scanned->last_segment_valid_bytes;
      }
    } else {
      MC3_RETURN_IF_ERROR(writer->OpenSegment(writer->last_seq_ + 1));
    }
  }

  if (options.sync == WalOptions::SyncPolicy::kGrouped) {
    writer->committer_ = std::thread([w = writer.get()] { w->CommitterLoop(); });
  }
  return writer;
}

WalWriter::~WalWriter() {
  const Status closed = Close();
  (void)closed;  // mc3-lint: status-ok(destructor cannot propagate)
}

Status WalWriter::OpenSegment(uint64_t first_seq) {
  const std::string path = dir_ + "/" + SegmentName(first_seq);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IOError("cannot create " + path);
  if (::write(fd, kWalMagic, sizeof(kWalMagic)) !=
      static_cast<ssize_t>(sizeof(kWalMagic))) {
    ::close(fd);
    return Status::IOError("cannot write magic to " + path);
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  segment_first_seq_ = first_seq;
  segment_bytes_written_ = sizeof(kWalMagic);
  return Status::OK();
}

Status WalWriter::WriteAndMaybeSync(const std::string& frames, bool sync) {
  size_t off = 0;
  while (off < frames.size()) {
    const ssize_t n = ::write(fd_, frames.data() + off, frames.size() - off);
    if (n < 0) return Status::IOError("WAL write failed in " + dir_);
    off += static_cast<size_t>(n);
  }
  if (sync && ::fsync(fd_) != 0) {
    return Status::IOError("WAL fsync failed in " + dir_);
  }
  return Status::OK();
}

Result<uint64_t> WalWriter::Append(std::string payload) {
  uint64_t seq = 0;
  uint64_t durable_now = 0;
  {
    util::MutexLock lock(mu_);
    if (closed_ || stopping_) return Status::Internal("WAL writer is closed");
    MC3_RETURN_IF_ERROR(committer_error_);
    seq = ++last_seq_;
    std::string frame = EncodeRecord(seq, payload);
    stats_.records_appended += 1;
    stats_.bytes_appended += frame.size();
    NoteAppend(frame.size());

    if (options_.sync == WalOptions::SyncPolicy::kGrouped) {
      pending_ += frame;
      pending_records_ += 1;
      pending_last_seq_ = seq;
      work_cv_.NotifyOne();
      return seq;
    }

    // Inline policies: the engine worker is the only appender, so writing
    // without dropping the lock is safe (and keeps seq order trivially).
    const bool sync = options_.sync == WalOptions::SyncPolicy::kImmediate;
    MC3_RETURN_IF_ERROR(WriteAndMaybeSync(frame, sync));
    segment_bytes_written_ += frame.size();
    if (sync) {
      durable_seq_ = seq;
      stats_.syncs += 1;
      stats_.bytes_fsynced += frame.size();
      stats_.group_commit_max = std::max<uint64_t>(stats_.group_commit_max, 1);
      NoteSync(frame.size(), 1);
      durable_now = seq;
    }
    if (options_.segment_bytes > 0 &&
        segment_bytes_written_ >= options_.segment_bytes) {
      MC3_RETURN_IF_ERROR(OpenSegment(seq + 1));
    }
  }
  // The durability hook runs outside mu_ (it may take subscriber locks).
  if (durable_now != 0 && options_.on_durable) options_.on_durable(durable_now);
  return seq;
}

void WalWriter::CommitterLoop() {
  util::UniqueLock lock(mu_);
  for (;;) {
    work_cv_.Wait(mu_, [this]() MC3_REQUIRES(mu_) {
      return pending_records_ > 0 || stopping_;
    });
    if (pending_records_ == 0 && stopping_) return;
    if (options_.group_window_ms > 0 && !stopping_) {
      // Linger briefly so concurrent appenders can join this group.
      const auto window = std::chrono::duration<double, std::milli>(
          options_.group_window_ms);
      (void)work_cv_.WaitFor(mu_, window,
                             [this]() MC3_REQUIRES(mu_) { return stopping_; });
    }
    std::string batch;
    batch.swap(pending_);
    const uint64_t records = pending_records_;
    const uint64_t batch_last_seq = pending_last_seq_;
    pending_records_ = 0;

    lock.Unlock();
    const Status wrote = WriteAndMaybeSync(batch, /*sync=*/true);
    lock.Lock();

    if (!wrote.ok()) {
      if (committer_error_.ok()) committer_error_ = wrote;
      durable_cv_.NotifyAll();
      // Keep draining the queue (discarding) so Close does not hang; every
      // subsequent Append fails with the sticky error.
      continue;
    }
    segment_bytes_written_ += batch.size();
    durable_seq_ = batch_last_seq;
    stats_.syncs += 1;
    stats_.bytes_fsynced += batch.size();
    stats_.group_commit_max = std::max(stats_.group_commit_max, records);
    NoteSync(batch.size(), records);
    if (options_.segment_bytes > 0 &&
        segment_bytes_written_ >= options_.segment_bytes &&
        pending_records_ == 0) {
      // Only rotate between batches: records appended during the fsync are
      // numbered past batch_last_seq and belong in the new segment.
      const Status rotated = OpenSegment(batch_last_seq + 1);
      if (!rotated.ok() && committer_error_.ok()) committer_error_ = rotated;
    }
    durable_cv_.NotifyAll();
    if (options_.on_durable) {
      // The durability hook runs outside mu_ (it may take subscriber locks).
      lock.Unlock();
      options_.on_durable(batch_last_seq);
      lock.Lock();
    }
  }
}

Status WalWriter::Sync() {
  util::MutexLock lock(mu_);
  if (options_.sync != WalOptions::SyncPolicy::kGrouped) {
    // kImmediate is durable already; kNone explicitly waives durability.
    return committer_error_;
  }
  const uint64_t target = last_seq_;
  durable_cv_.Wait(mu_, [this, target]() MC3_REQUIRES(mu_) {
    return durable_seq_ >= target || !committer_error_.ok();
  });
  return committer_error_;
}

Status WalWriter::Rotate(uint64_t snapshot_seq, bool keep_segments) {
  MC3_RETURN_IF_ERROR(Sync());
  util::MutexLock lock(mu_);
  MC3_RETURN_IF_ERROR(committer_error_);
  if (closed_) return Status::Internal("WAL writer is closed");
  // Start a fresh segment so every older segment holds only records
  // <= snapshot_seq and can be dropped wholesale.
  if (segment_bytes_written_ > sizeof(kWalMagic)) {
    MC3_RETURN_IF_ERROR(OpenSegment(last_seq_ + 1));
  }
  if (keep_segments) return Status::OK();
  auto segments = ListWalSegments(dir_);
  if (!segments.ok()) return segments.status();
  // A segment's records end just before the next segment's first sequence,
  // so segment i is fully covered by the snapshot iff segment i+1 starts at
  // or below snapshot_seq + 1. The final segment (the live one) is never
  // deleted.
  for (size_t i = 0; i + 1 < segments->size(); ++i) {
    uint64_t next_first = 0;
    ParseSegmentName((*segments)[i + 1], &next_first);
    if (next_first <= snapshot_seq + 1) {
      std::error_code ec;
      fs::remove(dir_ + "/" + (*segments)[i], ec);
      if (ec) {
        return Status::IOError("cannot remove " + (*segments)[i] + ": " +
                               ec.message());
      }
    }
  }
  return Status::OK();
}

Status WalWriter::EnsureSeqFloor(uint64_t floor) {
  util::MutexLock lock(mu_);
  if (closed_) return Status::Internal("WAL writer is closed");
  if (last_seq_ >= floor) return Status::OK();
  if (pending_records_ > 0) {
    return Status::Internal("EnsureSeqFloor with records in flight");
  }
  last_seq_ = floor;
  const uint64_t old_first_seq = segment_first_seq_;
  const bool old_empty = segment_bytes_written_ <= sizeof(kWalMagic);
  MC3_RETURN_IF_ERROR(OpenSegment(floor + 1));
  if (old_empty && old_first_seq != floor + 1) {
    // The abandoned segment held no records; leaving it behind would pin
    // the sequence floor *down* on the next scan. Drop it.
    std::error_code ec;
    fs::remove(dir_ + "/" + SegmentName(old_first_seq), ec);
    if (ec) {
      return Status::IOError("cannot remove empty segment " +
                             SegmentName(old_first_seq) + ": " + ec.message());
    }
  }
  return Status::OK();
}

WalWriterStats WalWriter::Stats() const {
  util::MutexLock lock(mu_);
  WalWriterStats stats = stats_;
  stats.last_seq = last_seq_;
  stats.durable_seq =
      options_.sync == WalOptions::SyncPolicy::kImmediate ? last_seq_
                                                          : durable_seq_;
  auto segments = ListWalSegments(dir_);
  stats.segments = segments.ok() ? segments->size() : 0;
  return stats;
}

Status WalWriter::Close() {
  {
    util::MutexLock lock(mu_);
    if (closed_) return committer_error_;
    stopping_ = true;
    work_cv_.NotifyAll();
  }
  if (committer_.joinable()) committer_.join();
  util::MutexLock lock(mu_);
  closed_ = true;
  if (fd_ >= 0) {
    if (options_.sync != WalOptions::SyncPolicy::kNone) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  return committer_error_;
}

}  // namespace mc3::durability
