#include "durability/durability.h"

#include <chrono>
#include <utility>

#include "data/query_log.h"
#include "durability/snapshot.h"
#include "obs/metrics.h"
#include "online/update_trace.h"
#include "util/float_cmp.h"

namespace mc3::durability {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Splits trace text into lines (the inverse of RenderUpdateBatch's
/// newline-terminated framing).
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

/// Prices classifiers the engine does not know yet, exactly mirroring the
/// live server's admission pricing (Server::PriceUnknown) so replay
/// reproduces the same cost table. Templated over the engine type: the
/// sharded facade exposes the same pricing surface as OnlineEngine.
template <typename Engine>
Status PriceUnknown(const std::vector<PropertySet>& added, double default_cost,
                    Engine* engine) {
  if (default_cost < 0 || added.empty()) return Status::OK();
  Instance pricing;
  pricing.set_property_names(engine->property_names());
  for (const PropertySet& query : added) pricing.AddQuery(query);
  data::CostEstimatorOptions estimator;
  estimator.default_difficulty = default_cost;
  MC3_RETURN_IF_ERROR(data::EstimateCosts(&pricing, estimator));
  for (const auto& [classifier, cost] : SortedCostEntries(pricing.costs())) {
    if (!IsInfiniteCost(engine->CostOf(classifier))) continue;
    MC3_RETURN_IF_ERROR(engine->SetCost(classifier, cost));
  }
  return Status::OK();
}

}  // namespace

DurabilityManager::DurabilityManager(DurabilityOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    DurabilityOptions options) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("durability requires a data directory");
  }
  std::unique_ptr<DurabilityManager> manager(
      // mc3-lint: new-delete-ok(private ctor; owned by unique_ptr at birth)
      new DurabilityManager(std::move(options)));
  auto wal = WalWriter::Open(manager->options_.data_dir, manager->options_.wal);
  if (!wal.ok()) return wal.status();
  manager->wal_ = std::move(*wal);
  manager->last_checkpoint_at_ = NowSeconds();
  return manager;
}

template <typename Engine, typename ImportFn>
Result<RecoveryStats> DurabilityManager::RecoverWith(const Instance& base,
                                                     double default_cost,
                                                     Engine* engine,
                                                     const ImportFn& import) {
  if (recovered_) return Status::Internal("Recover called twice");
  const double started = NowSeconds();

  RecoveryStats stats;
  const WalWriterStats wal_stats = wal_->Stats();
  stats.wal_last_seq = wal_stats.last_seq;
  stats.torn_tail = wal_stats.torn_tail_on_open;

  auto snapshot = LoadLatestSnapshot(options_.data_dir);
  if (snapshot.ok()) {
    stats.snapshot_loaded = true;
    stats.snapshot_seq = snapshot->seq;
    stats.snapshots_skipped = snapshot->skipped_invalid;
    MC3_RETURN_IF_ERROR(import(*snapshot));
  } else if (snapshot.status().code() == StatusCode::kNotFound) {
    auto initialized = engine->Initialize(base);
    if (!initialized.ok()) return initialized.status();
  } else {
    return snapshot.status();
  }

  if (stats.snapshot_seq > stats.wal_last_seq) {
    // The snapshot outlived its covering WAL segments (rotated away, or the
    // segments were lost). The snapshot alone is the recovered state; the
    // writer just must never reassign sequences at or below it.
    MC3_RETURN_IF_ERROR(wal_->EnsureSeqFloor(stats.snapshot_seq));
  }

  auto scan = ReadWal(options_.data_dir, stats.snapshot_seq);
  if (!scan.ok()) return scan.status();
  for (const WalRecord& record : scan->records) {
    auto trace = online::ParseUpdateTrace(SplitLines(record.payload),
                                          engine->property_names());
    if (!trace.ok()) {
      return Status::IOError("WAL record " + std::to_string(record.seq) +
                             ": " + trace.status().message());
    }
    engine->set_property_names(trace->property_names);
    std::vector<PropertySet> add;
    std::vector<PropertySet> remove;
    for (online::TraceOp& op : trace->ops) {
      if (op.kind == online::TraceOp::Kind::kAdd) {
        add.push_back(std::move(op.query));
      } else {
        remove.push_back(std::move(op.query));
      }
    }
    MC3_RETURN_IF_ERROR(PriceUnknown(add, default_cost, engine));
    auto applied = engine->ApplyUpdate(add, remove);
    if (!applied.ok()) {
      return Status::IOError("WAL record " + std::to_string(record.seq) +
                             " does not replay: " +
                             applied.status().message());
    }
    ++stats.wal_records_replayed;
  }

  stats.recovery_seconds = NowSeconds() - started;
  recovery_ = stats;
  recovered_ = true;

  obs::MetricsRegistry::Global()
      .GetCounter("durability.wal_records_replayed")
      .Add(stats.wal_records_replayed);
  obs::MetricsRegistry::Global()
      .GetGauge("durability.snapshot_seq")
      .Set(static_cast<double>(stats.snapshot_seq));
  obs::MetricsRegistry::Global()
      .GetGauge("durability.recovery_ms")
      .Set(stats.recovery_seconds * 1e3);
  return stats;
}

Result<RecoveryStats> DurabilityManager::Recover(
    const Instance& base, double default_cost, online::OnlineEngine* engine) {
  return RecoverWith(base, default_cost, engine,
                     [engine](const LoadedSnapshot& snapshot) {
                       return engine->ImportState(snapshot.state);
                     });
}

Result<RecoveryStats> DurabilityManager::Recover(
    const Instance& base, double default_cost, online::ShardedEngine* engine) {
  return RecoverWith(base, default_cost, engine,
                     [engine](const LoadedSnapshot& snapshot) {
                       return engine->ImportSharded(snapshot.ToShardedState());
                     });
}

Result<uint64_t> DurabilityManager::LogBatch(
    const std::vector<PropertySet>& add, const std::vector<PropertySet>& remove,
    const std::vector<std::string>& names) {
  auto payload = online::RenderUpdateBatch(add, remove, names);
  if (!payload.ok()) return payload.status();
  return LogPayload(std::move(*payload));
}

Result<uint64_t> DurabilityManager::LogPayload(std::string payload) {
  auto seq = wal_->Append(std::move(payload));
  if (seq.ok()) ++batches_since_checkpoint_;
  return seq;
}

bool DurabilityManager::ShouldCheckpoint() const {
  if (batches_since_checkpoint_ == 0) return false;
  if (options_.checkpoint_every_updates > 0 &&
      batches_since_checkpoint_ >= options_.checkpoint_every_updates) {
    return true;
  }
  if (options_.checkpoint_interval_s > 0 &&
      NowSeconds() - last_checkpoint_at_ >= options_.checkpoint_interval_s) {
    return true;
  }
  return false;
}

template <typename StateT>
Result<CheckpointInfo> DurabilityManager::CheckpointWith(const StateT& state) {
  const double started = NowSeconds();
  // Barrier: everything logged so far must be durable before the snapshot
  // that supersedes it is published — otherwise a crash after rotation
  // could lose acknowledged records the snapshot does not contain.
  MC3_RETURN_IF_ERROR(wal_->Sync());
  const uint64_t seq = wal_->Stats().last_seq;
  auto bytes = WriteSnapshotFile(options_.data_dir, state, seq);
  if (!bytes.ok()) return bytes.status();
  MC3_RETURN_IF_ERROR(wal_->Rotate(seq, options_.keep_segments));

  batches_since_checkpoint_ = 0;
  last_checkpoint_at_ = NowSeconds();

  CheckpointInfo info;
  info.seq = seq;
  info.path = options_.data_dir + "/" + SnapshotFileName(seq);
  info.bytes = *bytes;
  info.seconds = last_checkpoint_at_ - started;

  obs::MetricsRegistry::Global().GetCounter("durability.checkpoints").Add();
  obs::MetricsRegistry::Global()
      .GetCounter("durability.snapshot_bytes_written")
      .Add(info.bytes);
  obs::MetricsRegistry::Global()
      .GetGauge("durability.snapshot_seq")
      .Set(static_cast<double>(seq));
  return info;
}

Result<CheckpointInfo> DurabilityManager::Checkpoint(
    const online::EngineState& state) {
  return CheckpointWith(state);
}

Result<CheckpointInfo> DurabilityManager::Checkpoint(
    const online::ShardedState& state) {
  return CheckpointWith(state);
}

WalWriterStats DurabilityManager::GetWalStats() const { return wal_->Stats(); }

Status DurabilityManager::Close() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->Close();
}

}  // namespace mc3::durability
