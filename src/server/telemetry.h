// Request-scoped telemetry for the serving pipeline (docs/observability.md,
// "Serving telemetry").
//
// Two layers, both owned by ServingTelemetry:
//   * always-on per-stage histograms `server.stage.<stage>.<verb>`
//     (queue_wait, coalesce, shard_apply, wal_durable, serialize) recorded
//     through RecordStageSeconds — relaxed atomic ops, surfaced as
//     p50/p95/p99 by the `stats` verb and the `metrics` exposition;
//   * sampled trace export (`mc3 serve --trace-sample N --trace-out DIR`):
//     every Nth request gets a trace id whose spans are recorded into an
//     obs::TraceEventSink and written as Chrome trace-event JSON on
//     shutdown, with flow events stitching the request across the
//     connection worker, engine worker, shard worker and WAL committer
//     threads.
//
// The wal_durable stage needs special handling: group commit acknowledges a
// batch before its fsync completes, so the append registers a pending entry
// (NoteWalAppend) that the WalOptions::on_durable callback resolves on the
// committer thread (OnWalDurable). Under kImmediate the callback fires
// inside the append itself; a durable floor keeps that ordering race
// harmless.
//
// Everything compiles to no-ops under -DMC3_OBS=OFF.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace_event.h"
#include "server/protocol.h"
#include "util/status.h"

#if !defined(MC3_OBS_DISABLED)
#include <atomic>
#include <map>

#include "util/sync.h"
#include "util/thread_annotations.h"
#endif

namespace mc3::server {

struct TelemetryOptions {
  /// Record every Nth request's spans into the trace sink; 0 disables
  /// tracing entirely (ids are not assigned, responses are byte-identical
  /// to a build without this feature).
  uint64_t trace_sample = 0;
  /// Directory receiving the trace-event file on shutdown ("" = render
  /// only on demand; nothing written).
  std::string trace_out_dir;
};

/// Trace-id assignment for one request: `trace_id` is echoed in engine-op
/// responses when tracing is on (0 = tracing off), `sampled` gates span
/// recording.
struct TraceAssignment {
  uint64_t trace_id = 0;
  bool sampled = false;
};

/// Records one stage duration into the always-on registry histogram
/// `server.stage.<stage>.<verb>` (a relaxed atomic op; a no-op when the
/// obs layer is compiled out).
void RecordStageSeconds(const char* stage, Request::Op op, double seconds);

#if !defined(MC3_OBS_DISABLED)

class ServingTelemetry {
 public:
  explicit ServingTelemetry(TelemetryOptions options);

  /// True when trace sampling is configured (`--trace-sample N > 0`).
  bool enabled() const { return options_.trace_sample > 0; }

  /// Microseconds on the trace timebase (valid whether or not enabled).
  double NowUs() const { return sink_.NowUs(); }

  /// Assigns the next trace id and the sampling decision; all-zero when
  /// tracing is off. The first request is always sampled, then every
  /// trace_sample-th after it.
  TraceAssignment Assign();

  /// Registers the calling thread's display name (first call wins).
  void NameThread(const std::string& name);

  /// Records a span [start_us, now) on the calling thread, tagged with the
  /// given trace ids; dropped when tracing is off or no id is non-zero.
  void Span(const char* name, double start_us,
            const std::vector<uint64_t>& trace_ids);
  void Span(const char* name, double start_us, uint64_t trace_id);

  /// Registers WAL sequence `seq` (appended at `append_start_us`, carrying
  /// `trace_ids`) for wal_durable stage resolution. Must not be called for
  /// SyncPolicy::kNone (nothing would ever resolve it).
  void NoteWalAppend(uint64_t seq, Request::Op op, double append_start_us,
                     const std::vector<uint64_t>& trace_ids);

  /// WalOptions::on_durable target: resolves every pending append with
  /// seq <= durable_seq — records its wal_durable stage histogram and, for
  /// sampled requests, a span on the calling (committer) thread.
  void OnWalDurable(uint64_t durable_seq);

  /// Path the trace file will be written to for a server bound to `port`,
  /// or "" when export is not configured.
  std::string TraceFilePath(uint16_t port) const;

  /// Renders the sink and writes TraceFilePath(port), creating the output
  /// directory if needed. No-op (OK) when export is not configured.
  Status WriteTraceFile(uint16_t port);

  /// Direct sink access for tests.
  const obs::TraceEventSink& sink() const { return sink_; }

 private:
  struct PendingDurable {
    Request::Op op = Request::Op::kUpdate;
    double start_us = 0;
    std::vector<uint64_t> trace_ids;
  };

  // mc3-lint: guard-ok(frozen at construction, immutable afterwards)
  TelemetryOptions options_;
  // mc3-lint: guard-ok(TraceEventSink is internally synchronized)
  obs::TraceEventSink sink_;
  std::atomic<uint64_t> next_trace_id_{0};

  util::Mutex mu_;
  std::map<uint64_t, PendingDurable> pending_wal_ MC3_GUARDED_BY(mu_);
  /// Highest durable seq seen; appends at or below it resolve inline
  /// (kImmediate fires on_durable before NoteWalAppend can register).
  uint64_t durable_floor_ MC3_GUARDED_BY(mu_) = 0;
};

#else  // MC3_OBS_DISABLED: the same API as inlined no-ops.

class ServingTelemetry {
 public:
  explicit ServingTelemetry(TelemetryOptions) {}
  bool enabled() const { return false; }
  double NowUs() const { return 0; }
  TraceAssignment Assign() { return {}; }
  void NameThread(const std::string&) {}
  void Span(const char*, double, const std::vector<uint64_t>&) {}
  void Span(const char*, double, uint64_t) {}
  void NoteWalAppend(uint64_t, Request::Op, double,
                     const std::vector<uint64_t>&) {}
  void OnWalDurable(uint64_t) {}
  std::string TraceFilePath(uint16_t) const { return ""; }
  Status WriteTraceFile(uint16_t) { return Status::OK(); }
  const obs::TraceEventSink& sink() const { return sink_; }

 private:
  obs::TraceEventSink sink_;
};

#endif  // MC3_OBS_DISABLED

}  // namespace mc3::server
