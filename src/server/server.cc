#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <utility>

#include "data/query_log.h"
#include "obs/exposition.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "online/update_trace.h"
#include "server/coalescer.h"
#include "util/build_info.h"
#include "util/float_cmp.h"

namespace mc3::server {
namespace {

/// Largest accepted request line; longer input is a protocol violation.
constexpr size_t kMaxLineBytes = 1 << 20;

void CountEndpoint(const char* which, Request::Op op) {
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("server.") + which + "." + OpName(op))
      .Add();
}

std::string ShardMetric(size_t shard, const char* name) {
  return "server.shard." + std::to_string(shard) + "." + name;
}

/// Lock-free read-path stage histogram: server.read.<stage>.<verb>.
void RecordReadStageSeconds(const char* stage, Request::Op op,
                            double seconds) {
  obs::MetricsRegistry::Global()
      .GetHistogram(std::string("server.read.") + stage + "." + OpName(op))
      .Record(seconds);
}

/// Merges the per-shard view solutions into the canonical cross-shard
/// sequence: exactly the contents and order of
/// ShardedEngine::CurrentSolution().Sorted() (concatenate in shard order,
/// sort, drop duplicates). Each classifier keeps the price captured at
/// publish time, so snapshot renders never consult a cost table.
std::vector<std::pair<PropertySet, Cost>> MergeViewClassifiers(
    const std::vector<const online::EngineReadView*>& shards) {
  if (shards.size() == 1) return shards.front()->classifiers;
  std::vector<std::pair<PropertySet, Cost>> merged;
  size_t total = 0;
  for (const online::EngineReadView* view : shards) {
    total += view->classifiers.size();
  }
  merged.reserve(total);
  for (const online::EngineReadView* view : shards) {
    merged.insert(merged.end(), view->classifiers.begin(),
                  view->classifiers.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const std::pair<PropertySet, Cost>& a,
               const std::pair<PropertySet, Cost>& b) {
              return a.first < b.first;
            });
  merged.erase(std::unique(merged.begin(), merged.end(),
                           [](const std::pair<PropertySet, Cost>& a,
                              const std::pair<PropertySet, Cost>& b) {
                             return a.first == b.first;
                           }),
               merged.end());
  return merged;
}

/// Best-effort pin of `thread` to core `index % cores` (--pin-cores).
/// Linux-only; a no-op elsewhere and when the affinity call fails.
void PinThreadToCore(std::thread* thread, size_t index) {
#ifdef __linux__
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(index % cores, &set);
  (void)pthread_setaffinity_np(thread->native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)index;
#endif
}

}  // namespace

bool ParseReadPath(const std::string& text, ServerOptions::ReadPath* path) {
  if (text == "lockfree") {
    *path = ServerOptions::ReadPath::kLockFree;
    return true;
  }
  if (text == "queued") {
    *path = ServerOptions::ReadPath::kQueued;
    return true;
  }
  return false;
}

bool ParseShards(const std::string& text, uint32_t* shards) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > 1024) return false;
  }
  if (value == 0) return false;
  *shards = static_cast<uint32_t>(value);
  return true;
}

Admission AdmitAt(size_t depth, size_t watermark, double base_retry_ms) {
  Admission admission;
  if (watermark == 0 || depth < watermark) return admission;
  admission.accept = false;
  // Back off harder the deeper the overload: 1x the base at the watermark,
  // growing linearly with the excess depth.
  admission.retry_after_ms =
      base_retry_ms *
      (1.0 + static_cast<double>(depth - watermark + 1) /
                 static_cast<double>(watermark));
  return admission;
}

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity),
      engine_(options_.shards == 0 ? 1 : options_.shards, options_.engine),
      shard_counters_(options_.shards == 0 ? 1 : options_.shards),
      telemetry_({options_.trace_sample, options_.trace_out_dir}) {
  const uint32_t view_shards = options_.shards == 0 ? 1 : options_.shards;
  view_publishers_.reserve(view_shards);
  for (uint32_t s = 0; s < view_shards; ++s) {
    view_publishers_.push_back(
        std::make_unique<
            concurrency::VersionedPublisher<online::EngineReadView>>());
  }
  if (options_.admission_watermark == 0) {
    options_.admission_watermark =
        std::max<size_t>(1, options_.queue_capacity * 3 / 4);
  }
  options_.admission_watermark =
      std::min(options_.admission_watermark, options_.queue_capacity);
}

Server::~Server() {
  if (started_.load(std::memory_order_acquire) &&
      !stopped_.load(std::memory_order_acquire)) {
    RequestDrain();
    Join();
  }
}

Status Server::Start(const Instance& base) {
  if (started_.exchange(true)) {
    return Status::Internal("server already started");
  }
  uptime_.Reset();
  // Route WAL durability notifications into the telemetry layer so the
  // wal_durable stage of traced requests gets its committer-side timestamp.
  // kNone never advances durable_seq, so nothing would resolve the entries.
  if (obs::kObsEnabled && !options_.durability.data_dir.empty() &&
      options_.durability.wal.sync !=
          durability::WalOptions::SyncPolicy::kNone) {
    options_.durability.wal.on_durable = [this](uint64_t durable_seq) {
      telemetry_.OnWalDurable(durable_seq);
    };
  }
  {
    // No worker exists yet, but the initialization below writes the
    // engine_mu_-guarded state, so hold the (uncontended) lock for the
    // thread-safety analysis.
    util::MutexLock lock(engine_mu_);
    if (!options_.durability.data_dir.empty()) {
      auto manager = durability::DurabilityManager::Open(options_.durability);
      if (!manager.ok()) return manager.status();
      durability_ = std::move(*manager);
      auto recovered =
          durability_->Recover(base, options_.default_cost, &engine_);
      if (!recovered.ok()) return recovered.status();
      MC3_RETURN_IF_ERROR(engine_.CheckInvariants());
      // The recovered state may know properties the base workload does not
      // (interned from WAL-logged updates): the name table comes from the
      // engine, not the base.
      names_ = engine_.property_names();
    } else {
      auto init = engine_.Initialize(base);
      if (!init.ok()) return init.status();
      names_ = base.property_names();
    }
    for (PropertyId id = 0; id < names_.size(); ++id) {
      interned_.emplace(names_[id], id);
    }
    engine_.set_property_names(names_);
    if (!options_.record_trace_path.empty()) {
      trace_recorder_ = std::fopen(options_.record_trace_path.c_str(), "ab");
      if (trace_recorder_ == nullptr) {
        return Status::IOError("cannot open record-trace file " +
                               options_.record_trace_path);
      }
    }
    // Publish the initial (post-init / post-recovery) views before any
    // socket exists: every connection ever accepted finds a live index.
    PublishReadViews({});
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  auto fail = [this](const char* what) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string(what) + ": " + std::strerror(errno));
  };
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("cannot parse listen host " +
                                   options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 128) != 0) return fail("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  if (::pipe(wake_pipe_) != 0) return fail("pipe");

  pool_ = std::make_unique<WorkerPool>(
      std::max<size_t>(1, options_.connection_workers));
  // Shard workers before engine workers: the engine workers dispatch apply
  // jobs to the shard queues and must never find them missing. With 0
  // engine workers (embedding mode) batches apply serially inline, so no
  // shard threads are needed.
  if (engine_.num_shards() > 1 && options_.engine_workers > 0) {
    const uint32_t num_shards = engine_.num_shards();
    shard_queues_.reserve(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      // One dispatcher holds engine_mu_ per batch and each batch posts at
      // most one job per shard, so a tiny queue never fills.
      shard_queues_.push_back(
          std::make_unique<BoundedQueue<std::function<void()>>>(4));
    }
    for (uint32_t s = 0; s < num_shards; ++s) {
      shard_threads_.emplace_back([this, s] { ShardWorkerLoop(s); });
      if (options_.pin_cores) PinThreadToCore(&shard_threads_.back(), s);
    }
  }
  for (size_t w = 0; w < options_.engine_workers; ++w) {
    engine_threads_.emplace_back([this] { EngineWorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::RequestDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  queue_.Close();
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    // Best-effort wake of the acceptor's poll; Join also closes the socket.
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  {
    util::MutexLock lock(drain_mu_);
  }
  drain_cv_.NotifyAll();
}

void Server::Join() {
  {
    util::MutexLock lock(drain_mu_);
    drain_cv_.Wait(drain_mu_, [this] {
      return draining_.load(std::memory_order_acquire);
    });
  }
  if (stopped_.exchange(true)) return;
  if (acceptor_.joinable()) acceptor_.join();
  if (options_.engine_workers == 0) ProcessQueuedNow();
  for (std::thread& worker : engine_threads_) {
    if (worker.joinable()) worker.join();
  }
  // Engine workers (the only producers of shard jobs) are gone: the shard
  // queues can close and their workers drain out.
  for (const auto& shard_queue : shard_queues_) shard_queue->Close();
  for (std::thread& worker : shard_threads_) {
    if (worker.joinable()) worker.join();
  }
  // Unblock connection readers so their pool tasks finish; everything
  // queued has already been answered (the queue drained above).
  {
    util::MutexLock lock(conns_mu_);
    for (const std::weak_ptr<Connection>& weak : conns_) {
      if (std::shared_ptr<Connection> conn = weak.lock()) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  if (pool_ != nullptr) pool_->Shutdown();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  // Engine workers are gone: nothing appends anymore. Make the tail durable
  // and release the data directory. The lock is uncontended (every worker
  // is joined) but the analysis wants it for the guarded sinks.
  util::MutexLock lock(engine_mu_);
  if (durability_ != nullptr) {
    const Status closed = durability_->Close();
    if (!closed.ok()) wal_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  if (trace_recorder_ != nullptr) {
    std::fclose(trace_recorder_);
    trace_recorder_ = nullptr;
  }
  // Durability is closed (the final group commit has fired on_durable), so
  // every span that will ever exist is in the sink: export the trace file.
  const Status trace_written = telemetry_.WriteTraceFile(port_);
  if (!trace_written.ok()) {
    obs::MetricsRegistry::Global()
        .GetCounter("server.trace_write_errors")
        .Add();
  }
}

void Server::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & (POLLIN | POLLHUP)) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      util::MutexLock lock(conns_mu_);
      conns_.push_back(conn);
    }
    (void)pool_->Post([this, conn] { ConnectionLoop(conn); });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::ConnectionLoop(const std::shared_ptr<Connection>& conn) {
  telemetry_.NameThread("conn");
  // One reader slot per connection (mutex-protected registration); each
  // read on this connection then pins an epoch lock-free (ReadGuard).
  concurrency::ReaderRegistration reader(epochs_);
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    size_t newline;
    while ((newline = buffer.find('\n', start)) != std::string::npos) {
      std::string line = buffer.substr(start, newline - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      start = newline + 1;
      if (!line.empty()) HandleLine(conn, line, reader);
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxLineBytes) {
      malformed_.fetch_add(1, std::memory_order_relaxed);
      WriteResponse(conn, RenderErrorResponse(0, Request::Op::kHealth, 400,
                                              "request line too long"));
      break;
    }
  }
}

void Server::HandleLine(const std::shared_ptr<Connection>& conn,
                        const std::string& line,
                        concurrency::ReaderRegistration& reader) {
  Timer latency;
  const bool tracing = telemetry_.enabled();
  const double parse_start_us = tracing ? telemetry_.NowUs() : 0;
  auto parsed = ParseRequest(line);
  if (!parsed.ok()) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    WriteResponse(conn, RenderErrorResponse(0, Request::Op::kHealth, 400,
                                            parsed.status().message()));
    return;
  }
  Request request = std::move(*parsed);
  requests_.fetch_add(1, std::memory_order_relaxed);
  CountEndpoint("requests", request.op);
  const TraceAssignment trace = telemetry_.Assign();

  switch (request.op) {
    case Request::Op::kHealth:
      WriteResponse(conn, RenderHealth(request));
      ObserveLatency(request, latency.Seconds());
      return;
    case Request::Op::kStats:
      WriteResponse(conn, RenderStats(request, reader));
      ObserveLatency(request, latency.Seconds());
      return;
    case Request::Op::kShutdown: {
      obs::JsonWriter writer(/*compact=*/true);
      writer.BeginObject();
      writer.Key("id").Int(request.id);
      writer.Key("op").String("shutdown");
      writer.Key("code").Int(200);
      writer.Key("draining").Bool(true);
      writer.EndObject();
      WriteResponse(conn, writer.Take());
      ObserveLatency(request, latency.Seconds());
      RequestDrain();
      return;
    }
    case Request::Op::kWalStats:
      WriteResponse(conn, RenderWalStats(request));
      ObserveLatency(request, latency.Seconds());
      return;
    case Request::Op::kMetrics:
      WriteResponse(conn, RenderMetrics(request));
      ObserveLatency(request, latency.Seconds());
      return;
    case Request::Op::kSolve:
    case Request::Op::kUpdate:
    case Request::Op::kSnapshot:
    case Request::Op::kCheckpoint:
      break;
  }

  // Engine ops pass admission control and enter the bounded queue.
  if (draining_.load(std::memory_order_acquire)) {
    refused_draining_.fetch_add(1, std::memory_order_relaxed);
    WriteResponse(conn, RenderErrorResponse(request.id, request.op, 503,
                                            "server is draining"));
    return;
  }
  // Read-only verbs never queue on the lock-free path: they render from
  // the epoch-protected published views right here, on the connection
  // worker thread — no admission control, no engine mutex, no 429s
  // (docs/serving.md#lock-free-reads). `--read-path queued` falls through
  // to the legacy queue route below.
  if ((request.op == Request::Op::kSolve ||
       request.op == Request::Op::kSnapshot) &&
      options_.read_path == ServerOptions::ReadPath::kLockFree) {
    if (trace.sampled) {
      telemetry_.Span("parse", parse_start_us, trace.trace_id);
    }
    HandleLockFreeRead(conn, request, trace.trace_id, trace.sampled, latency,
                       reader);
    return;
  }
  const size_t depth = queue_.Depth();
  const Admission admission =
      AdmitAt(depth, options_.admission_watermark, options_.base_retry_ms);
  if (!admission.accept) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Global().GetCounter("server.rejected").Add();
    WriteResponse(conn,
                  RenderErrorResponse(request.id, request.op, 429,
                                      "queue depth " + std::to_string(depth) +
                                          " at admission watermark",
                                      admission.retry_after_ms));
    return;
  }
  PendingRequest pending;
  pending.request = std::move(request);
  pending.conn = conn;
  pending.trace_id = trace.trace_id;
  pending.sampled = trace.sampled;
  if (trace.sampled) pending.queued_us = telemetry_.NowUs();
  const Request::Op op = pending.request.op;
  const uint64_t id = pending.request.id;
  if (!queue_.TryPush(std::move(pending))) {
    if (queue_.closed()) {
      refused_draining_.fetch_add(1, std::memory_order_relaxed);
      WriteResponse(conn, RenderErrorResponse(id, op, 503,
                                              "server is draining"));
    } else {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::Global().GetCounter("server.rejected").Add();
      WriteResponse(conn, RenderErrorResponse(
                              id, op, 429, "queue is at hard capacity",
                              options_.base_retry_ms * 2));
    }
    return;
  }
  const size_t depth_now = queue_.Depth();
  obs::MetricsRegistry::Global()
      .GetGauge("server.queue_depth")
      .Set(static_cast<double>(depth_now));
  // High watermark for post-hoc saturation analysis (stats/metrics verbs).
  uint64_t seen_depth = queue_depth_max_.load(std::memory_order_relaxed);
  while (seen_depth < depth_now &&
         !queue_depth_max_.compare_exchange_weak(
             seen_depth, depth_now, std::memory_order_relaxed)) {
  }
  if (trace.sampled) telemetry_.Span("parse", parse_start_us, trace.trace_id);
}

void Server::EngineWorkerLoop() {
  telemetry_.NameThread("engine-worker");
  while (ProcessNext(/*drain_only=*/false)) {
  }
}

void Server::ShardWorkerLoop(size_t index) {
  telemetry_.NameThread("shard-" + std::to_string(index));
  BoundedQueue<std::function<void()>>& shard_queue = *shard_queues_[index];
  while (true) {
    std::optional<std::function<void()>> job = shard_queue.Pop();
    if (!job.has_value()) return;
    (*job)();
  }
}

Result<online::UpdateStats> Server::ApplyEngineUpdate(
    const std::vector<PropertySet>& add,
    const std::vector<PropertySet>& remove,
    const std::vector<uint64_t>& trace_ids) {
  const bool span_apply = telemetry_.enabled() && !trace_ids.empty();
  if (shard_queues_.empty()) {
    // Unsharded (or embedding-mode) apply: one span on the applying thread
    // stands in for the per-shard ones.
    const double start_us = span_apply ? telemetry_.NowUs() : 0;
    Result<online::UpdateStats> applied = engine_.ApplyUpdate(add, remove);
    if (span_apply) telemetry_.Span("shard_apply", start_us, trace_ids);
    return applied;
  }
  // Dispatch the routed per-shard jobs to the shard workers and block until
  // every shard committed; the batch is acked only after this returns. The
  // dispatching engine worker holds engine_mu_, so at most one batch is in
  // flight and the shard queues cannot fill.
  return engine_.ApplyUpdate(
      add, remove,
      [this, span_apply,
       &trace_ids](std::vector<std::function<void()>>* jobs) {
        // The barrier state is shared-owned by every dispatched job: a
        // stack-local condition variable could be destroyed while the last
        // shard worker is still inside notify_one (the waiter's predicate
        // turns true the instant the count hits zero).
        struct Barrier {
          util::Mutex mu;
          util::CondVar done;
          size_t outstanding MC3_GUARDED_BY(mu) = 0;
        };
        size_t dispatched = 0;
        for (const std::function<void()>& job : *jobs) {
          if (job) ++dispatched;
        }
        if (dispatched == 0) return;
        auto barrier = std::make_shared<Barrier>();
        {
          util::MutexLock lock(barrier->mu);
          barrier->outstanding = dispatched;
        }
        for (size_t s = 0; s < jobs->size(); ++s) {
          if (!(*jobs)[s]) continue;
          std::function<void()>* job = &(*jobs)[s];
          // Sampled batches record one shard_apply span per dispatched
          // shard, on the shard worker thread that ran the job (the ids
          // vector is copied into the job: it outlives this dispatch).
          std::vector<uint64_t> span_ids =
              span_apply ? trace_ids : std::vector<uint64_t>{};
          auto wrapped = [this, job, barrier,
                          span_ids = std::move(span_ids)] {
            const double start_us =
                span_ids.empty() ? 0 : telemetry_.NowUs();
            (*job)();
            if (!span_ids.empty()) {
              telemetry_.Span("shard_apply", start_us, span_ids);
            }
            {
              util::MutexLock lock(barrier->mu);
              --barrier->outstanding;
            }
            barrier->done.NotifyOne();
          };
          if (!shard_queues_[s]->TryPush(wrapped)) {
            // Closed or full (neither can happen while engine workers are
            // live, but a lost job would deadlock the batch): run inline.
            wrapped();
          }
          // Shard-queue high watermark (point-in-time depths miss bursts).
          const size_t shard_depth = shard_queues_[s]->Depth();
          uint64_t seen = shard_counters_[s].queue_depth_max.load(
              std::memory_order_relaxed);
          while (seen < shard_depth &&
                 !shard_counters_[s].queue_depth_max.compare_exchange_weak(
                     seen, shard_depth, std::memory_order_relaxed)) {
          }
        }
        util::MutexLock lock(barrier->mu);
        barrier->done.Wait(barrier->mu, [&]() MC3_REQUIRES(barrier->mu) {
          return barrier->outstanding == 0;
        });
      });
}

void Server::RecordShardWork(size_t ops) {
  if (engine_.num_shards() == 1) {
    if (ops == 0) return;
    shard_counters_[0].batches.fetch_add(1, std::memory_order_relaxed);
    shard_counters_[0].ops.fetch_add(ops, std::memory_order_relaxed);
    obs::MetricsRegistry::Global().GetCounter(ShardMetric(0, "batches")).Add();
    obs::MetricsRegistry::Global().GetCounter(ShardMetric(0, "ops")).Add(ops);
    return;
  }
  const online::ShardBatchStats& batch = engine_.last_batch();
  for (size_t s = 0; s < batch.shard_ops.size(); ++s) {
    if (batch.shard_ops[s] == 0) continue;
    shard_counters_[s].batches.fetch_add(1, std::memory_order_relaxed);
    shard_counters_[s].ops.fetch_add(batch.shard_ops[s],
                                     std::memory_order_relaxed);
    obs::MetricsRegistry::Global().GetCounter(ShardMetric(s, "batches")).Add();
    obs::MetricsRegistry::Global()
        .GetCounter(ShardMetric(s, "ops"))
        .Add(batch.shard_ops[s]);
  }
  if (batch.migrated > 0) {
    migrated_.fetch_add(batch.migrated, std::memory_order_relaxed);
    obs::MetricsRegistry::Global()
        .GetCounter("server.shard.migrated")
        .Add(batch.migrated);
  }
}

void Server::ProcessQueuedNow() {
  while (ProcessNext(/*drain_only=*/true)) {
  }
}

bool Server::ProcessNext(bool drain_only) {
  std::optional<PendingRequest> first =
      drain_only ? queue_.TryPopIf([](const PendingRequest&) { return true; })
                 : queue_.Pop();
  if (!first.has_value()) return false;
  obs::MetricsRegistry::Global()
      .GetGauge("server.queue_depth")
      .Set(static_cast<double>(queue_.Depth()));
  if (first->request.op == Request::Op::kUpdate) {
    std::vector<PendingRequest> batch;
    batch.push_back(std::move(*first));
    // Coalesce the maximal run of consecutive updates at the head; stopping
    // at the first non-update preserves FIFO between reads and writes.
    while (batch.size() < options_.max_batch) {
      std::optional<PendingRequest> next =
          queue_.TryPopIf([](const PendingRequest& pending) {
            return pending.request.op == Request::Op::kUpdate;
          });
      if (!next.has_value()) break;
      batch.push_back(std::move(*next));
    }
    HandleUpdateBatch(std::move(batch));
  } else if (first->request.op == Request::Op::kSolve) {
    HandleSolve(*first);
  } else if (first->request.op == Request::Op::kCheckpoint) {
    HandleCheckpoint(*first);
  } else {
    HandleSnapshot(*first);
  }
  return true;
}

PropertySet Server::InternQuery(const std::vector<std::string>& names) {
  std::vector<PropertyId> ids;
  ids.reserve(names.size());
  for (const std::string& name : names) {
    const auto [it, inserted] =
        interned_.emplace(name, static_cast<PropertyId>(names_.size()));
    if (inserted) names_.push_back(name);
    ids.push_back(it->second);
  }
  return PropertySet::FromUnsorted(std::move(ids));
}

Status Server::PriceUnknown(const std::vector<PropertySet>& added) {
  if (options_.default_cost < 0 || added.empty()) return Status::OK();
  Instance pricing;
  pricing.set_property_names(names_);
  for (const PropertySet& query : added) pricing.AddQuery(query);
  data::CostEstimatorOptions estimator;
  estimator.default_difficulty = options_.default_cost;
  MC3_RETURN_IF_ERROR(data::EstimateCosts(&pricing, estimator));
  for (const auto& [classifier, cost] : SortedCostEntries(pricing.costs())) {
    if (!IsInfiniteCost(engine_.CostOf(classifier))) continue;
    MC3_RETURN_IF_ERROR(engine_.SetCost(classifier, cost));
  }
  return Status::OK();
}

uint64_t Server::PersistApplied(const std::vector<PropertySet>& add,
                                const std::vector<PropertySet>& remove,
                                const std::vector<uint64_t>& trace_ids) {
  if (durability_ == nullptr && trace_recorder_ == nullptr) return 0;
  auto payload = online::RenderUpdateBatch(add, remove, names_);
  if (!payload.ok()) {
    // Unreachable for admitted requests (ParseQueryLists only admits
    // serializable names), but a base workload with exotic names could
    // trip it; the batch stays applied, the gap is surfaced as a counter.
    wal_errors_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  if (trace_recorder_ != nullptr) {
    std::fwrite(payload->data(), 1, payload->size(), trace_recorder_);
    std::fflush(trace_recorder_);
  }
  if (durability_ == nullptr) return 0;
  // Only a policy that eventually fires on_durable may register a pending
  // wal_durable stage (kNone never resolves it).
  const bool track_durable =
      obs::kObsEnabled &&
      options_.durability.wal.sync !=
          durability::WalOptions::SyncPolicy::kNone;
  const double append_start_us = track_durable ? telemetry_.NowUs() : 0;
  auto seq = durability_->LogPayload(std::move(*payload));
  if (!seq.ok()) {
    wal_errors_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  if (track_durable) {
    telemetry_.NoteWalAppend(*seq, Request::Op::kUpdate, append_start_us,
                             trace_ids);
  }
  return *seq;
}

void Server::MaybeCheckpoint() {
  if (durability_ == nullptr || !durability_->ShouldCheckpoint()) return;
  auto info = durability_->Checkpoint(engine_.ExportSharded());
  if (!info.ok()) wal_errors_.fetch_add(1, std::memory_order_relaxed);
}

void Server::HandleUpdateBatch(std::vector<PendingRequest> batch) {
  struct ParsedUpdate {
    std::vector<PropertySet> add;
    std::vector<PropertySet> remove;
  };
  std::vector<ParsedUpdate> parsed(batch.size());
  std::vector<std::string> responses(batch.size());

  // Stage telemetry: queue_wait closes for every member now that the batch
  // left the queue; the batch-level stages (coalesce, shard_apply,
  // wal_durable) carry every sampled member's trace id.
  const bool tracing = telemetry_.enabled();
  std::vector<uint64_t> sampled_ids;
  for (const PendingRequest& member : batch) {
    RecordStageSeconds("queue_wait", Request::Op::kUpdate,
                       member.enqueued.Seconds());
    if (member.sampled) {
      sampled_ids.push_back(member.trace_id);
      telemetry_.Span("queue_wait", member.queued_us, member.trace_id);
    }
  }

  {
    util::MutexLock lock(engine_mu_);
    // Shards whose state this batch changed (any path), for the view
    // republish below. An applied batch with zero net ops still bumps the
    // facade counters, so the index is republished whenever anything
    // applied at all.
    std::vector<bool> touched(shard_counters_.size(), false);
    bool any_applied = false;
    const auto fold_touched = [this, &touched,
                               &any_applied]() MC3_REQUIRES(engine_mu_) {
      any_applied = true;
      if (engine_.num_shards() == 1) {
        touched[0] = true;
        return;
      }
      const online::ShardBatchStats& routed = engine_.last_batch();
      const size_t bound = std::min(routed.shard_ops.size(), touched.size());
      for (size_t s = 0; s < bound; ++s) {
        if (routed.shard_ops[s] > 0) touched[s] = true;
      }
    };
    Timer coalesce_timer;
    const double coalesce_start_us = tracing ? telemetry_.NowUs() : 0;
    UpdateCoalescer coalescer;
    for (size_t i = 0; i < batch.size(); ++i) {
      for (const auto& names : batch[i].request.add) {
        parsed[i].add.push_back(InternQuery(names));
      }
      for (const auto& names : batch[i].request.remove) {
        parsed[i].remove.push_back(InternQuery(names));
      }
      coalescer.Fold(parsed[i].add, parsed[i].remove);
    }
    engine_.set_property_names(names_);

    const NetUpdate net = coalescer.Take();
    RecordStageSeconds("coalesce", Request::Op::kUpdate,
                       coalesce_timer.Seconds());
    telemetry_.Span("coalesce", coalesce_start_us, sampled_ids);
    Status priced = PriceUnknown(net.add);
    Timer apply_timer;
    Result<online::UpdateStats> applied =
        priced.ok() ? ApplyEngineUpdate(net.add, net.remove, sampled_ids)
                    : Result<online::UpdateStats>(priced);
    if (applied.ok()) {
      fold_touched();
      RecordStageSeconds("shard_apply", Request::Op::kUpdate,
                         apply_timer.Seconds());
      RecordShardWork(net.ops);
      batches_.fetch_add(1, std::memory_order_relaxed);
      coalesced_ops_.fetch_add(net.ops, std::memory_order_relaxed);
      uint64_t seen = max_batch_.load(std::memory_order_relaxed);
      while (seen < net.ops &&
             !max_batch_.compare_exchange_weak(seen, net.ops,
                                               std::memory_order_relaxed)) {
      }
      obs::MetricsRegistry::Global().GetCounter("server.batches").Add();
      obs::MetricsRegistry::Global()
          .GetCounter("server.coalesced_ops")
          .Add(net.ops);
      obs::MetricsRegistry::Global()
          .GetHistogram("server.batch_size")
          .Record(static_cast<double>(net.ops));
      const uint64_t wal_seq = PersistApplied(net.add, net.remove,
                                              sampled_ids);
      for (size_t i = 0; i < batch.size(); ++i) {
        obs::JsonWriter writer(/*compact=*/true);
        writer.BeginObject();
        writer.Key("id").Int(batch[i].request.id);
        writer.Key("op").String("update");
        writer.Key("code").Int(200);
        if (batch[i].trace_id != 0) {
          writer.Key("trace_id").Int(batch[i].trace_id);
        }
        if (durability_ != nullptr) writer.Key("wal_seq").Int(wal_seq);
        writer.Key("batch_size").Int(net.ops);
        writer.Key("batch_requests").Int(batch.size());
        writer.Key("queries_added").Int(applied->queries_added);
        writer.Key("queries_removed").Int(applied->queries_removed);
        writer.Key("components_resolved").Int(applied->components_resolved);
        writer.Key("cost").Number(engine_.TotalCost());
        writer.Key("queries").Int(engine_.NumQueries());
        writer.Key("components").Int(engine_.NumComponents());
        writer.EndObject();
        responses[i] = writer.Take();
      }
    } else {
      // The coalesced batch is infeasible as a whole (typically one
      // uncoverable add). Fall back to per-request application so the
      // blast radius is the offending request, not its batch peers.
      for (size_t i = 0; i < batch.size(); ++i) {
        std::vector<uint64_t> one_ids;
        if (batch[i].sampled) one_ids.push_back(batch[i].trace_id);
        Status fallback_priced = PriceUnknown(parsed[i].add);
        Result<online::UpdateStats> one =
            fallback_priced.ok()
                ? ApplyEngineUpdate(parsed[i].add, parsed[i].remove, one_ids)
                : Result<online::UpdateStats>(fallback_priced);
        if (!one.ok()) {
          responses[i] = RenderErrorResponse(batch[i].request.id,
                                             Request::Op::kUpdate, 400,
                                             one.status().message());
          continue;
        }
        fold_touched();
        RecordShardWork(parsed[i].add.size() + parsed[i].remove.size());
        batches_.fetch_add(1, std::memory_order_relaxed);
        const uint64_t wal_seq = PersistApplied(parsed[i].add,
                                                parsed[i].remove, one_ids);
        obs::JsonWriter writer(/*compact=*/true);
        writer.BeginObject();
        writer.Key("id").Int(batch[i].request.id);
        writer.Key("op").String("update");
        writer.Key("code").Int(200);
        if (batch[i].trace_id != 0) {
          writer.Key("trace_id").Int(batch[i].trace_id);
        }
        if (durability_ != nullptr) writer.Key("wal_seq").Int(wal_seq);
        writer.Key("batch_size").Int(one->queries_added +
                                     one->queries_removed);
        writer.Key("batch_requests").Int(1);
        writer.Key("queries_added").Int(one->queries_added);
        writer.Key("queries_removed").Int(one->queries_removed);
        writer.Key("components_resolved").Int(one->components_resolved);
        writer.Key("cost").Number(engine_.TotalCost());
        writer.Key("queries").Int(engine_.NumQueries());
        writer.Key("components").Int(engine_.NumComponents());
        writer.EndObject();
        responses[i] = writer.Take();
      }
    }
    // Publish before the lock drops (and so before any ack is written):
    // a client that saw its ack reads its write on the lock-free path.
    if (any_applied) PublishReadViews(touched);
    MaybeCheckpoint();
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    FinishTracedResponse(batch[i], responses[i]);
  }
}

void Server::FinishTracedResponse(const PendingRequest& pending,
                                  const std::string& response) {
  Timer serialize_timer;
  const double serialize_start_us = pending.sampled ? telemetry_.NowUs() : 0;
  WriteResponse(pending.conn, response);
  RecordStageSeconds("serialize", pending.request.op,
                     serialize_timer.Seconds());
  if (pending.sampled) {
    telemetry_.Span("serialize", serialize_start_us, pending.trace_id);
  }
  ObserveLatency(pending.request, pending.enqueued.Seconds());
}

void Server::HandleSolve(const PendingRequest& pending) {
  RecordStageSeconds("queue_wait", Request::Op::kSolve,
                     pending.enqueued.Seconds());
  if (pending.sampled) {
    telemetry_.Span("queue_wait", pending.queued_us, pending.trace_id);
  }
  obs::JsonWriter writer(/*compact=*/true);
  {
    util::MutexLock lock(engine_mu_);
    writer.BeginObject();
    writer.Key("id").Int(pending.request.id);
    writer.Key("op").String("solve");
    writer.Key("code").Int(200);
    if (pending.trace_id != 0) {
      writer.Key("trace_id").Int(pending.trace_id);
    }
    writer.Key("cost").Number(engine_.TotalCost());
    writer.Key("queries").Int(engine_.NumQueries());
    writer.Key("components").Int(engine_.NumComponents());
    const Solution solution = engine_.CurrentSolution();
    writer.Key("classifiers").Int(solution.size());
    if (pending.request.include_solution) {
      writer.Key("solution").BeginArray();
      for (const PropertySet& classifier : solution.Sorted()) {
        writer.BeginArray();
        for (const PropertyId id : classifier) {
          writer.String(id < names_.size() ? names_[id]
                                           : std::to_string(id));
        }
        writer.EndArray();
      }
      writer.EndArray();
    }
    writer.EndObject();
  }
  FinishTracedResponse(pending, writer.Take());
}

void Server::HandleSnapshot(const PendingRequest& pending) {
  RecordStageSeconds("queue_wait", Request::Op::kSnapshot,
                     pending.enqueued.Seconds());
  if (pending.sampled) {
    telemetry_.Span("queue_wait", pending.queued_us, pending.trace_id);
  }
  obs::JsonWriter writer(/*compact=*/true);
  {
    util::MutexLock lock(engine_mu_);
    writer.BeginObject();
    writer.Key("id").Int(pending.request.id);
    writer.Key("op").String("snapshot");
    writer.Key("code").Int(200);
    if (pending.trace_id != 0) {
      writer.Key("trace_id").Int(pending.trace_id);
    }
    writer.Key("cost").Number(engine_.TotalCost());
    writer.Key("queries").Int(engine_.NumQueries());
    writer.Key("components").Int(engine_.NumComponents());
    const Solution solution = engine_.CurrentSolution();
    writer.Key("classifiers").BeginArray();
    for (const PropertySet& classifier : solution.Sorted()) {
      writer.BeginObject();
      writer.Key("properties").BeginArray();
      for (const PropertyId id : classifier) {
        writer.String(id < names_.size() ? names_[id] : std::to_string(id));
      }
      writer.EndArray();
      writer.Key("cost").Number(engine_.CostOf(classifier));
      writer.EndObject();
    }
    writer.EndArray();
    const online::EngineCounters& counters = engine_.counters();
    writer.Key("counters").BeginObject();
    writer.Key("updates").Int(counters.updates);
    writer.Key("queries_added").Int(counters.queries_added);
    writer.Key("queries_removed").Int(counters.queries_removed);
    writer.Key("components_resolved").Int(counters.components_resolved);
    writer.Key("queries_touched").Int(counters.queries_touched);
    writer.EndObject();
    writer.EndObject();
  }
  FinishTracedResponse(pending, writer.Take());
}

void Server::HandleCheckpoint(const PendingRequest& pending) {
  RecordStageSeconds("queue_wait", Request::Op::kCheckpoint,
                     pending.enqueued.Seconds());
  if (pending.sampled) {
    telemetry_.Span("queue_wait", pending.queued_us, pending.trace_id);
  }
  if (durability_ == nullptr) {
    WriteResponse(pending.conn,
                  RenderErrorResponse(pending.request.id,
                                      Request::Op::kCheckpoint, 400,
                                      "server is not durable (no --data-dir)"));
    ObserveLatency(pending.request, pending.enqueued.Seconds());
    return;
  }
  obs::JsonWriter writer(/*compact=*/true);
  {
    util::MutexLock lock(engine_mu_);
    auto info = durability_->Checkpoint(engine_.ExportSharded());
    if (!info.ok()) {
      WriteResponse(pending.conn,
                    RenderErrorResponse(pending.request.id,
                                        Request::Op::kCheckpoint, 500,
                                        info.status().message()));
      ObserveLatency(pending.request, pending.enqueued.Seconds());
      return;
    }
    writer.BeginObject();
    writer.Key("id").Int(pending.request.id);
    writer.Key("op").String("checkpoint");
    writer.Key("code").Int(200);
    if (pending.trace_id != 0) {
      writer.Key("trace_id").Int(pending.trace_id);
    }
    writer.Key("seq").Int(info->seq);
    writer.Key("bytes").Int(info->bytes);
    writer.Key("path").String(info->path);
    writer.Key("checkpoint_ms").Number(info->seconds * 1e3);
    writer.EndObject();
  }
  FinishTracedResponse(pending, writer.Take());
}

void Server::PublishReadViews(const std::vector<bool>& touched) {
  // Phase 1: rebuild and swap the touched shard publishers, collecting the
  // displaced views. They are NOT retired yet — the currently published
  // index still references them (multi-root ordering, concurrency/epoch.h).
  std::vector<const online::EngineReadView*> displaced;
  const uint32_t shards = engine_.num_shards();
  for (uint32_t s = 0; s < shards && s < view_publishers_.size(); ++s) {
    const bool republish =
        touched.empty() || (s < touched.size() && touched[s]);
    // Writer-side Acquire: we are the only publisher and hold engine_mu_,
    // so the loaded pointer cannot be retired under us (no epoch needed).
    if (!republish && view_publishers_[s]->Acquire() != nullptr) continue;
    // mc3-lint: new-delete-ok(ownership passes to the publisher/epoch pair)
    auto* view = new online::EngineReadView(online::BuildReadView(
        engine_.shard(s), view_publishers_[s]->version() + 1));
    const online::EngineReadView* old = view_publishers_[s]->Publish(view);
    if (old != nullptr) displaced.push_back(old);
  }
  // Name-table snapshot, shared across indexes until interning grows it.
  if (published_names_ == nullptr ||
      published_names_->size() != names_.size()) {
    published_names_ = std::make_shared<const std::vector<std::string>>(names_);
  }
  // Phase 2: build and swap the cross-shard index root. One pinned load of
  // this object is a consistent cut: views, version vector, name table and
  // facade counters all captured under the same engine_mu_ hold.
  // mc3-lint: new-delete-ok(ownership passes to the publisher/epoch pair)
  auto* index = new ReadIndex;
  index->seq = index_publisher_.version() + 1;
  index->shards.reserve(view_publishers_.size());
  index->versions.reserve(view_publishers_.size());
  for (const auto& publisher : view_publishers_) {
    const online::EngineReadView* view = publisher->Acquire();
    index->shards.push_back(view);
    index->versions.push_back(view->version);
  }
  index->names = published_names_;
  index->counters = engine_.counters();
  const ReadIndex* old_index = index_publisher_.Publish(index);
  // Phase 3: retire in root-unreachability order — the displaced index
  // first (it was the only root naming the displaced views), then those
  // views — and fold one reclamation pass into the publish.
  if (old_index != nullptr) epochs_.Retire(old_index);
  for (const online::EngineReadView* view : displaced) epochs_.Retire(view);
  epochs_.AdvanceAndReclaim();
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("engine.view.version")
      .Set(static_cast<double>(index->seq));
  registry.GetGauge("engine.epoch.retired")
      .Set(static_cast<double>(epochs_.TotalReclaimed()));
}

void Server::HandleLockFreeRead(const std::shared_ptr<Connection>& conn,
                                const Request& request, uint64_t trace_id,
                                bool sampled, const Timer& latency,
                                concurrency::ReaderRegistration& reader) {
  std::string response;
  {
    Timer acquire_timer;
    const double acquire_start_us = sampled ? telemetry_.NowUs() : 0;
    concurrency::ReadGuard guard(epochs_, reader);
    const ReadIndex* index = index_publisher_.Acquire();
    RecordReadStageSeconds("acquire", request.op, acquire_timer.Seconds());
    if (sampled) {
      telemetry_.Span("read_acquire", acquire_start_us, trace_id);
    }
    if (index == nullptr) {
      // Start() publishes before the socket opens, so this is unreachable
      // through the wire; kept as a defensive 503 for direct-call tests.
      WriteResponse(conn,
                    RenderErrorResponse(request.id, request.op, 503,
                                        "read views not yet published",
                                        options_.base_retry_ms));
      ObserveLatency(request, latency.Seconds());
      return;
    }
    Timer render_timer;
    const double render_start_us = sampled ? telemetry_.NowUs() : 0;
    response = request.op == Request::Op::kSolve
                   ? RenderSolveFromIndex(request, trace_id, *index)
                   : RenderSnapshotFromIndex(request, trace_id, *index);
    RecordReadStageSeconds("render", request.op, render_timer.Seconds());
    if (sampled) {
      telemetry_.Span("read_render", render_start_us, trace_id);
    }
  }
  // The epoch unpins before the socket write: the response string owns all
  // its bytes, so a slow client never extends the grace period.
  Timer serialize_timer;
  const double serialize_start_us = sampled ? telemetry_.NowUs() : 0;
  WriteResponse(conn, response);
  RecordStageSeconds("serialize", request.op, serialize_timer.Seconds());
  if (sampled) telemetry_.Span("serialize", serialize_start_us, trace_id);
  ObserveLatency(request, latency.Seconds());
}

std::string Server::RenderSolveFromIndex(const Request& request,
                                         uint64_t trace_id,
                                         const ReadIndex& index) {
  // Field-for-field identical to HandleSolve's render at the same state:
  // sums run in shard order (ShardedEngine::TotalCost), the solution is
  // merged canonically (MergeViewClassifiers above).
  obs::JsonWriter writer(/*compact=*/true);
  writer.BeginObject();
  writer.Key("id").Int(request.id);
  writer.Key("op").String("solve");
  writer.Key("code").Int(200);
  if (trace_id != 0) writer.Key("trace_id").Int(trace_id);
  Cost total = 0;
  size_t queries = 0;
  size_t components = 0;
  for (const online::EngineReadView* view : index.shards) {
    total += view->total_cost;
    queries += view->num_queries;
    components += view->num_components;
  }
  writer.Key("cost").Number(total);
  writer.Key("queries").Int(queries);
  writer.Key("components").Int(components);
  const std::vector<std::pair<PropertySet, Cost>> merged =
      MergeViewClassifiers(index.shards);
  writer.Key("classifiers").Int(merged.size());
  if (request.include_solution) {
    const std::vector<std::string>& names = *index.names;
    writer.Key("solution").BeginArray();
    for (const auto& entry : merged) {
      writer.BeginArray();
      for (const PropertyId id : entry.first) {
        writer.String(id < names.size() ? names[id] : std::to_string(id));
      }
      writer.EndArray();
    }
    writer.EndArray();
  }
  writer.EndObject();
  return writer.Take();
}

std::string Server::RenderSnapshotFromIndex(const Request& request,
                                            uint64_t trace_id,
                                            const ReadIndex& index) {
  // Field-for-field identical to HandleSnapshot's render at the same
  // state; classifier prices were captured at publish time from the
  // replicated cost table, matching ShardedEngine::CostOf.
  obs::JsonWriter writer(/*compact=*/true);
  writer.BeginObject();
  writer.Key("id").Int(request.id);
  writer.Key("op").String("snapshot");
  writer.Key("code").Int(200);
  if (trace_id != 0) writer.Key("trace_id").Int(trace_id);
  Cost total = 0;
  size_t queries = 0;
  size_t components = 0;
  for (const online::EngineReadView* view : index.shards) {
    total += view->total_cost;
    queries += view->num_queries;
    components += view->num_components;
  }
  writer.Key("cost").Number(total);
  writer.Key("queries").Int(queries);
  writer.Key("components").Int(components);
  const std::vector<std::pair<PropertySet, Cost>> merged =
      MergeViewClassifiers(index.shards);
  const std::vector<std::string>& names = *index.names;
  writer.Key("classifiers").BeginArray();
  for (const auto& entry : merged) {
    writer.BeginObject();
    writer.Key("properties").BeginArray();
    for (const PropertyId id : entry.first) {
      writer.String(id < names.size() ? names[id] : std::to_string(id));
    }
    writer.EndArray();
    writer.Key("cost").Number(entry.second);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("counters").BeginObject();
  writer.Key("updates").Int(index.counters.updates);
  writer.Key("queries_added").Int(index.counters.queries_added);
  writer.Key("queries_removed").Int(index.counters.queries_removed);
  writer.Key("components_resolved").Int(index.counters.components_resolved);
  writer.Key("queries_touched").Int(index.counters.queries_touched);
  writer.EndObject();
  writer.EndObject();
  return writer.Take();
}

std::string Server::RenderWalStats(const Request& request) {
  obs::JsonWriter writer(/*compact=*/true);
  writer.BeginObject();
  writer.Key("id").Int(request.id);
  writer.Key("op").String("wal_stats");
  writer.Key("code").Int(200);
  writer.Key("enabled").Bool(durability_ != nullptr);
  if (durability_ != nullptr) {
    const durability::WalWriterStats wal = durability_->GetWalStats();
    writer.Key("last_seq").Int(wal.last_seq);
    writer.Key("durable_seq").Int(wal.durable_seq);
    writer.Key("records_appended").Int(wal.records_appended);
    writer.Key("bytes_appended").Int(wal.bytes_appended);
    writer.Key("bytes_fsynced").Int(wal.bytes_fsynced);
    writer.Key("syncs").Int(wal.syncs);
    writer.Key("group_commit_max").Int(wal.group_commit_max);
    writer.Key("segments").Int(wal.segments);
    writer.Key("wal_errors").Int(wal_errors_.load(std::memory_order_relaxed));
    const durability::RecoveryStats& recovery = durability_->recovery();
    writer.Key("recovery").BeginObject();
    writer.Key("snapshot_loaded").Bool(recovery.snapshot_loaded);
    writer.Key("snapshot_seq").Int(recovery.snapshot_seq);
    writer.Key("wal_records_replayed").Int(recovery.wal_records_replayed);
    writer.Key("wal_last_seq").Int(recovery.wal_last_seq);
    writer.Key("torn_tail").Bool(recovery.torn_tail);
    writer.Key("recovery_ms").Number(recovery.recovery_seconds * 1e3);
    writer.EndObject();
  }
  writer.EndObject();
  return writer.Take();
}

std::string Server::RenderHealth(const Request& request) {
  // Health never queues and never touches the engine: it is answered
  // inline on the connection thread in every server state. While draining
  // it answers 503 with a retry hint (load balancers should fail over),
  // but still answers — a draining server is observable to the end.
  const bool draining = draining_.load(std::memory_order_acquire);
  obs::JsonWriter writer(/*compact=*/true);
  writer.BeginObject();
  writer.Key("id").Int(request.id);
  writer.Key("op").String("health");
  writer.Key("code").Int(draining ? 503 : 200);
  writer.Key("status").String(draining ? "draining" : "ok");
  if (draining) writer.Key("retry_after_ms").Number(options_.base_retry_ms);
  writer.Key("queue_depth").Int(queue_.Depth());
  writer.Key("uptime_seconds").Number(uptime_.Seconds());
  writer.Key("build").BeginObject();
  writer.Key("compiler").String(util::BuildCompiler());
  writer.Key("build_type").String(util::BuildType());
  writer.Key("obs").Bool(obs::kObsEnabled);
  writer.EndObject();
  writer.EndObject();
  return writer.Take();
}

std::string Server::RenderStats(const Request& request,
                                concurrency::ReaderRegistration& reader) {
  const ServerStats stats = GetStats();
  obs::JsonWriter writer(/*compact=*/true);
  writer.BeginObject();
  writer.Key("id").Int(request.id);
  writer.Key("op").String("stats");
  writer.Key("code").Int(200);
  writer.Key("draining").Bool(draining_.load(std::memory_order_acquire));
  writer.Key("connections").Int(stats.connections);
  writer.Key("requests").Int(stats.requests);
  writer.Key("responses").Int(stats.responses);
  writer.Key("rejected").Int(stats.rejected);
  writer.Key("refused_draining").Int(stats.refused_draining);
  writer.Key("malformed").Int(stats.malformed);
  writer.Key("batches").Int(stats.batches);
  writer.Key("coalesced_ops").Int(stats.coalesced_ops);
  writer.Key("max_batch").Int(stats.max_batch);
  writer.Key("queue_depth").Int(stats.queue_depth);
  writer.Key("queue_depth_max").Int(stats.queue_depth_max);
  writer.Key("uptime_seconds").Number(stats.uptime_seconds);
  // Sharding view: always present (a single shard renders one entry), read
  // entirely from Server-level atomics and queue depths so this inline
  // path never touches engine_mu_.
  writer.Key("engine_shards").Int(shard_counters_.size());
  writer.Key("migrated").Int(stats.migrated);
  writer.Key("shards").BeginArray();
  for (size_t s = 0; s < stats.shards.size(); ++s) {
    writer.BeginObject();
    writer.Key("shard").Int(s);
    writer.Key("batches").Int(stats.shards[s].batches);
    writer.Key("ops").Int(stats.shards[s].ops);
    writer.Key("queue_depth").Int(stats.shards[s].queue_depth);
    writer.Key("queue_depth_max").Int(stats.shards[s].queue_depth_max);
    writer.EndObject();
  }
  writer.EndArray();
  {
    // Snapshot-consistency contract (docs/serving.md#lock-free-reads): the
    // version vector comes from ONE pinned load of the published index, so
    // it is a consistent cross-shard cut — never a torn mix of shard
    // versions gathered while a batch commits in between.
    concurrency::ReadGuard guard(epochs_, reader);
    const ReadIndex* index = index_publisher_.Acquire();
    if (index != nullptr) {
      writer.Key("view_seq").Int(index->seq);
      writer.Key("versions").BeginArray();
      for (const uint64_t version : index->versions) writer.Int(version);
      writer.EndArray();
    }
  }
  if (obs::kObsEnabled) {
    // Per-endpoint in-server latency percentiles (seconds), straight from
    // the ambient metrics registry. MetricsSnapshot maps are ordered, so
    // the rendering is deterministic.
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snap();
    writer.Key("latency_seconds").BeginObject();
    const std::string prefix = "server.latency.";
    for (const auto& [name, histogram] : snap.histograms) {
      if (name.rfind(prefix, 0) != 0) continue;
      writer.Key(name.substr(prefix.size())).BeginObject();
      writer.Key("count").Int(histogram.count);
      writer.Key("mean").Number(histogram.Mean());
      writer.Key("p50").Number(histogram.P50());
      writer.Key("p95").Number(histogram.P95());
      writer.Key("p99").Number(histogram.P99());
      writer.EndObject();
    }
    writer.EndObject();
    // Pipeline stage breakdown (docs/observability.md, "Serving
    // telemetry"): keys are `<stage>.<verb>`, values mirror the latency
    // percentile shape above.
    writer.Key("stages").BeginObject();
    const std::string stage_prefix = "server.stage.";
    for (const auto& [name, histogram] : snap.histograms) {
      if (name.rfind(stage_prefix, 0) != 0) continue;
      writer.Key(name.substr(stage_prefix.size())).BeginObject();
      writer.Key("count").Int(histogram.count);
      writer.Key("mean").Number(histogram.Mean());
      writer.Key("p50").Number(histogram.P50());
      writer.Key("p95").Number(histogram.P95());
      writer.Key("p99").Number(histogram.P99());
      writer.EndObject();
    }
    writer.EndObject();
  }
  writer.EndObject();
  return writer.Take();
}

std::string Server::RenderMetrics(const Request& request) {
  const ServerStats stats = GetStats();
  // Extras cover everything the registry does not already track under a
  // flat name. Per-shard series are grouped per metric (not per shard) so
  // RenderPrometheus emits one TYPE header per adjacent same-name run.
  std::vector<obs::ExpositionSample> extra;
  const auto counter = [&extra](const std::string& name, double value) {
    extra.push_back({name, "counter", {}, value});
  };
  const auto gauge = [&extra](const std::string& name, double value) {
    extra.push_back({name, "gauge", {}, value});
  };
  counter("server.connections", stats.connections);
  counter("server.requests", stats.requests);
  counter("server.responses", stats.responses);
  counter("server.refused_draining", stats.refused_draining);
  counter("server.malformed", stats.malformed);
  counter("server.wal_errors",
          wal_errors_.load(std::memory_order_relaxed));
  gauge("server.max_batch", stats.max_batch);
  gauge("server.queue_depth_max", stats.queue_depth_max);
  gauge("server.engine_shards", stats.shards.size());
  gauge("server.uptime_seconds", stats.uptime_seconds);
  if (!obs::kObsEnabled) {
    // The metrics registry is compiled out: surface its most important
    // serving counters from the server's own atomics instead (same names
    // the registry would have used, so dashboards keep working).
    counter("server.batches", stats.batches);
    counter("server.coalesced_ops", stats.coalesced_ops);
    counter("server.rejected", stats.rejected);
    gauge("server.queue_depth", stats.queue_depth);
  }
  const auto shard_series = [&extra, &stats](const std::string& name,
                                             const auto& value_of) {
    for (size_t s = 0; s < stats.shards.size(); ++s) {
      extra.push_back({name,
                       "gauge",
                       {{"shard", std::to_string(s)}},
                       static_cast<double>(value_of(stats.shards[s]))});
    }
  };
  shard_series("server.shard.batches",
               [](const ShardStats& s) { return s.batches; });
  shard_series("server.shard.ops", [](const ShardStats& s) { return s.ops; });
  shard_series("server.shard.queue_depth",
               [](const ShardStats& s) { return s.queue_depth; });
  shard_series("server.shard.queue_depth_max",
               [](const ShardStats& s) { return s.queue_depth_max; });
  extra.push_back({"build_info",
                   "gauge",
                   {{"compiler", util::BuildCompiler()},
                    {"build_type", util::BuildType()},
                    {"obs", obs::kObsEnabled ? "on" : "off"}},
                   1.0});
  const std::string body = obs::RenderPrometheus(
      obs::MetricsRegistry::Global().Snap(), extra);
  obs::JsonWriter writer(/*compact=*/true);
  writer.BeginObject();
  writer.Key("id").Int(request.id);
  writer.Key("op").String("metrics");
  writer.Key("code").Int(200);
  writer.Key("content_type").String("text/plain; version=0.0.4");
  writer.Key("body").String(body);
  writer.EndObject();
  return writer.Take();
}

void Server::WriteResponse(const std::shared_ptr<Connection>& conn,
                           const std::string& line) {
  responses_.fetch_add(1, std::memory_order_relaxed);
  const std::string framed = line + "\n";
  util::MutexLock lock(conn->write_mu);
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(conn->fd, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;  // peer gone; the response is undeliverable
    sent += static_cast<size_t>(n);
  }
}

void Server::ObserveLatency(const Request& request, double seconds) {
  CountEndpoint("responses", request.op);
  obs::MetricsRegistry::Global()
      .GetHistogram(std::string("server.latency.") + OpName(request.op))
      .Record(seconds);
}

ServerStats Server::GetStats() const {
  ServerStats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.responses = responses_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.refused_draining =
      refused_draining_.load(std::memory_order_relaxed);
  stats.malformed = malformed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.coalesced_ops = coalesced_ops_.load(std::memory_order_relaxed);
  stats.max_batch = max_batch_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_.Depth();
  stats.queue_depth_max = queue_depth_max_.load(std::memory_order_relaxed);
  stats.uptime_seconds = uptime_.Seconds();
  stats.migrated = migrated_.load(std::memory_order_relaxed);
  stats.shards.resize(shard_counters_.size());
  for (size_t s = 0; s < shard_counters_.size(); ++s) {
    stats.shards[s].batches =
        shard_counters_[s].batches.load(std::memory_order_relaxed);
    stats.shards[s].ops =
        shard_counters_[s].ops.load(std::memory_order_relaxed);
    stats.shards[s].queue_depth =
        s < shard_queues_.size() ? shard_queues_[s]->Depth() : 0;
    stats.shards[s].queue_depth_max =
        shard_counters_[s].queue_depth_max.load(std::memory_order_relaxed);
  }
  return stats;
}

void Server::WithEngine(
    const std::function<void(const online::OnlineEngine&)>& fn) {
  util::MutexLock lock(engine_mu_);
  fn(engine_.shard(0));
}

void Server::WithShardedEngine(
    const std::function<void(const online::ShardedEngine&)>& fn) {
  util::MutexLock lock(engine_mu_);
  fn(engine_);
}

}  // namespace mc3::server
