#include "server/coalescer.h"

namespace mc3::server {

void UpdateCoalescer::Fold(const PropertySet& query, LastOp op) {
  ++ops_;
  const auto [it, inserted] = index_.emplace(query, entries_.size());
  if (inserted) {
    entries_.emplace_back(query, op);
  } else {
    entries_[it->second].second = op;
  }
}

void UpdateCoalescer::Add(const PropertySet& query) {
  Fold(query, LastOp::kAdd);
}

void UpdateCoalescer::Remove(const PropertySet& query) {
  Fold(query, LastOp::kRemove);
}

void UpdateCoalescer::Fold(const std::vector<PropertySet>& add,
                           const std::vector<PropertySet>& remove) {
  // ApplyUpdate applies a batch's removes before its adds; folding in that
  // order keeps net semantics aligned with the per-request application.
  for (const PropertySet& query : remove) Remove(query);
  for (const PropertySet& query : add) Add(query);
}

NetUpdate UpdateCoalescer::Take() {
  NetUpdate net;
  net.ops = ops_;
  for (const auto& [query, op] : entries_) {
    if (op == LastOp::kAdd) {
      net.add.push_back(query);
    } else {
      net.remove.push_back(query);
    }
  }
  entries_.clear();
  index_.clear();
  ops_ = 0;
  return net;
}

}  // namespace mc3::server
