#include "server/telemetry.h"

#include "obs/metrics.h"

#if !defined(MC3_OBS_DISABLED)
#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <utility>
#endif

namespace mc3::server {

void RecordStageSeconds(const char* stage, Request::Op op, double seconds) {
  obs::MetricsRegistry::Global()
      .GetHistogram(std::string("server.stage.") + stage + "." + OpName(op))
      .Record(seconds);
}

#if !defined(MC3_OBS_DISABLED)

namespace {
/// Backstop against a durability hook that never fires (misconfiguration):
/// the pending map sheds its oldest entries past this size.
constexpr size_t kMaxPendingWal = 65536;
}  // namespace

ServingTelemetry::ServingTelemetry(TelemetryOptions options)
    : options_(std::move(options)) {}

TraceAssignment ServingTelemetry::Assign() {
  TraceAssignment assignment;
  if (!enabled()) return assignment;
  const uint64_t seq = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  assignment.trace_id = seq + 1;
  assignment.sampled = seq % options_.trace_sample == 0;
  return assignment;
}

void ServingTelemetry::NameThread(const std::string& name) {
  if (!enabled()) return;
  sink_.NameCurrentThread(name);
}

void ServingTelemetry::Span(const char* name, double start_us,
                            const std::vector<uint64_t>& trace_ids) {
  if (!enabled()) return;
  std::vector<uint64_t> ids;
  ids.reserve(trace_ids.size());
  for (uint64_t id : trace_ids) {
    if (id != 0) ids.push_back(id);
  }
  if (ids.empty()) return;
  sink_.Span(name, start_us, NowUs() - start_us, ids);
}

void ServingTelemetry::Span(const char* name, double start_us,
                            uint64_t trace_id) {
  if (!enabled() || trace_id == 0) return;
  sink_.Span(name, start_us, NowUs() - start_us, trace_id);
}

void ServingTelemetry::NoteWalAppend(uint64_t seq, Request::Op op,
                                     double append_start_us,
                                     const std::vector<uint64_t>& trace_ids) {
  bool durable_already = false;
  {
    util::MutexLock lock(mu_);
    if (seq <= durable_floor_) {
      durable_already = true;
    } else {
      PendingDurable pending;
      pending.op = op;
      pending.start_us = append_start_us;
      if (enabled()) {
        for (uint64_t id : trace_ids) {
          if (id != 0) pending.trace_ids.push_back(id);
        }
      }
      pending_wal_.emplace(seq, std::move(pending));
      while (pending_wal_.size() > kMaxPendingWal) {
        pending_wal_.erase(pending_wal_.begin());
      }
    }
  }
  if (durable_already) {
    RecordStageSeconds("wal_durable", op, (NowUs() - append_start_us) / 1e6);
    Span("wal_durable", append_start_us, trace_ids);
  }
}

void ServingTelemetry::OnWalDurable(uint64_t durable_seq) {
  if (enabled()) sink_.NameCurrentThread("wal-committer");
  std::vector<PendingDurable> resolved;
  {
    util::MutexLock lock(mu_);
    durable_floor_ = std::max(durable_floor_, durable_seq);
    auto it = pending_wal_.begin();
    while (it != pending_wal_.end() && it->first <= durable_seq) {
      resolved.push_back(std::move(it->second));
      it = pending_wal_.erase(it);
    }
  }
  if (resolved.empty()) return;
  const double now = NowUs();
  for (const PendingDurable& pending : resolved) {
    RecordStageSeconds("wal_durable", pending.op,
                       (now - pending.start_us) / 1e6);
    if (enabled() && !pending.trace_ids.empty()) {
      sink_.Span("wal_durable", pending.start_us, now - pending.start_us,
                 pending.trace_ids);
    }
  }
}

std::string ServingTelemetry::TraceFilePath(uint16_t port) const {
  if (!enabled() || options_.trace_out_dir.empty()) return "";
  return options_.trace_out_dir + "/serve_trace_" + std::to_string(port) +
         ".json";
}

Status ServingTelemetry::WriteTraceFile(uint16_t port) {
  const std::string path = TraceFilePath(port);
  if (path.empty()) return Status::OK();
  // Best-effort single-level create; an unwritable path fails below with a
  // useful message either way.
  (void)::mkdir(options_.trace_out_dir.c_str(), 0755);
  return sink_.WriteFile(path);
}

#endif  // !MC3_OBS_DISABLED

}  // namespace mc3::server
