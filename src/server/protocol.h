// Wire protocol of the serving subsystem: newline-delimited JSON over TCP
// (one request object per line in, one response object per line out),
// parsed and rendered with the dependency-free src/obs/json machinery.
//
// Requests:
//   {"op":"health"}
//   {"op":"stats","id":3}
//   {"op":"solve","id":4,"solution":true}
//   {"op":"update","id":5,"add":[["red","shirt"]],"remove":[["sony","tv"]]}
//   {"op":"snapshot","id":6}
//   {"op":"checkpoint","id":7}
//   {"op":"wal_stats","id":8}
//   {"op":"metrics","id":9}
//   {"op":"shutdown","id":10}
//
// Responses always carry the echoed "id" (0 when the request had none),
// the request "op", and an HTTP-flavoured "code": 200 ok, 400 malformed or
// inapplicable request, 429 rejected by admission control (with a
// "retry_after_ms" hint), 503 draining. See docs/serving.md for the full
// payload of each endpoint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mc3::server {

/// One parsed request line.
struct Request {
  enum class Op {
    kHealth,
    kStats,
    kSolve,
    kUpdate,
    kSnapshot,
    kCheckpoint,  ///< force a durability snapshot (400 when not durable)
    kWalStats,    ///< WAL writer + recovery statistics
    kMetrics,     ///< Prometheus text exposition of the whole obs registry
    kShutdown,
  };
  Op op = Op::kHealth;
  uint64_t id = 0;  ///< client-chosen correlation id, echoed verbatim
  /// Queries to add / remove, as property-name lists (names are interned
  /// against the engine's table at apply time).
  std::vector<std::vector<std::string>> add;
  std::vector<std::vector<std::string>> remove;
  bool include_solution = false;  ///< solve: attach the classifier list
};

/// Human-readable endpoint name of `op` ("health", "update", ...). Also the
/// suffix of the per-endpoint obs metrics (server.requests.<name>).
const char* OpName(Request::Op op);

/// Parses one request line. Errors are kInvalidArgument and name the
/// offending member, e.g. `unknown op "solv"`.
Result<Request> ParseRequest(const std::string& line);

/// Renders a compact (single-line, no trailing newline) error response.
std::string RenderErrorResponse(uint64_t id, Request::Op op, int code,
                                const std::string& message,
                                double retry_after_ms = 0);

}  // namespace mc3::server
