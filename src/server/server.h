// Long-lived TCP serving front-end for the incremental engine: a
// newline-delimited-JSON listener (src/server/protocol.h) whose accepted
// connections are handled by a fixed WorkerPool, feeding engine operations
// through a BoundedQueue into dedicated engine workers that coalesce
// concurrent updates into single OnlineEngine churn steps.
//
// Threading model (docs/serving.md):
//   * acceptor thread    — accept() loop; posts one connection task per
//                          socket to the worker pool (pool size bounds
//                          concurrent connections);
//   * connection tasks   — blocking line reads; health/stats/shutdown are
//                          answered inline, engine ops (solve, update,
//                          snapshot) pass admission control and enter the
//                          bounded queue;
//   * engine workers     — block on the queue; an update at the head is
//                          coalesced with the maximal run of consecutive
//                          queued updates (never reordering reads past
//                          writes) and applied as ONE ApplyUpdate; all
//                          engine access is serialized by a mutex;
//   * shard workers      — with --shards N > 1 the engine is a
//                          ShardedEngine and each shard gets a dedicated
//                          worker thread (optionally core-pinned) behind a
//                          small bounded queue; the engine worker routes a
//                          coalesced batch, dispatches the per-shard apply
//                          jobs to those queues and blocks until all shards
//                          committed, then acks every folded request. Reads
//                          merge per-shard results in canonical order, so
//                          responses are byte-identical to --shards 1
//                          (docs/serving.md#sharded-serving).
//
// Admission control: the queue has a hard capacity and a reject watermark;
// at or above the watermark new engine ops are answered 429 with a
// retry_after_ms hint instead of queueing (bounded latency beats unbounded
// buffering). Graceful drain (shutdown request or SIGTERM in the CLI):
// stop accepting, answer new engine ops 503, finish everything queued,
// then join — no accepted request is ever dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "concurrency/epoch.h"
#include "concurrency/versioned_publisher.h"
#include "core/instance.h"
#include "durability/durability.h"
#include "online/online_engine.h"
#include "online/read_view.h"
#include "online/sharded_engine.h"
#include "server/bounded_queue.h"
#include "server/protocol.h"
#include "server/telemetry.h"
#include "server/worker_pool.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace mc3::server {

/// Admission-control decision for an engine op arriving at queue depth
/// `depth`. Rejects at or above the watermark; the retry hint grows
/// linearly with the overload so clients back off harder the deeper the
/// queue (deterministic in its inputs).
struct Admission {
  bool accept = true;
  double retry_after_ms = 0;
};
Admission AdmitAt(size_t depth, size_t watermark, double base_retry_ms);

/// Parses a `--shards` value: a positive integer in [1, 1024]. Returns
/// false (leaving `*shards` untouched) on non-numeric input, zero,
/// negatives, trailing garbage, or out-of-range counts — the CLI turns
/// that into a usage error.
bool ParseShards(const std::string& text, uint32_t* shards);

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral (read the bound port from port())

  /// Hard bound of the engine-op queue.
  size_t queue_capacity = 1024;
  /// Reject engine ops at/above this queue depth; 0 derives 3/4 capacity.
  size_t admission_watermark = 0;
  /// Base of the 429 Retry-After hint.
  double base_retry_ms = 25;

  /// Engine ops coalesced into one churn step at most.
  size_t max_batch = 256;
  /// Engine worker threads (1 = strictly FIFO). 0 is an embedding/test
  /// mode: nothing drains the queue until ProcessQueuedNow() is called.
  size_t engine_workers = 1;
  /// Connection-handling pool size = max concurrent connections.
  size_t connection_workers = 16;

  /// Engine shards (`mc3 serve --shards`). 1 keeps the legacy single
  /// OnlineEngine; N > 1 splits the live components across N engines with
  /// dedicated shard worker threads, byte-equivalent on every verb
  /// (docs/serving.md#sharded-serving).
  uint32_t shards = 1;
  /// Pin shard worker i to CPU core i % hardware_concurrency
  /// (`mc3 serve --pin-cores`; Linux only, silently ignored elsewhere).
  bool pin_cores = false;

  /// Price unknown classifiers of added queries at this default difficulty
  /// (mirrors `mc3 serve --default-cost`); negative = no auto-pricing, an
  /// uncoverable add fails with 400.
  double default_cost = -1;

  online::EngineOptions engine;

  /// Durability (docs/durability.md). Enabled when `durability.data_dir`
  /// is non-empty: Start recovers engine state from the directory's latest
  /// snapshot + WAL tail, every admitted update batch is WAL-logged, and
  /// checkpoints fire per the configured policy or the `checkpoint` verb.
  durability::DurabilityOptions durability;

  /// Debug flag (`mc3 serve --record-trace`): append every admitted update
  /// batch as update_trace text to this file, replayable via
  /// `mc3 serve <workload> --trace`. Independent of durability.
  std::string record_trace_path;

  /// Request tracing (`mc3 serve --trace-sample N`): assign every request a
  /// trace id (echoed in engine-op responses) and record every Nth
  /// request's per-stage spans into a Chrome trace-event sink. 0 keeps
  /// tracing fully off — responses stay byte-identical to earlier builds.
  uint64_t trace_sample = 0;
  /// Where the trace-event JSON lands on shutdown (`--trace-out DIR`);
  /// see trace_file_path(). Empty = collected but never written.
  std::string trace_out_dir;

  /// Which path answers the read-only engine verbs (`solve`, `snapshot`).
  /// kLockFree (the default) renders them on the connection worker thread
  /// from epoch-protected published views — no queue, no engine mutex, flat
  /// read latency under write churn (docs/serving.md#lock-free-reads).
  /// kQueued (`mc3 serve --read-path queued`) keeps the legacy behavior of
  /// riding the engine-op queue, as an A/B baseline and rollback switch.
  /// Mutations always queue; responses are byte-identical on both paths.
  enum class ReadPath { kLockFree, kQueued };
  ReadPath read_path = ReadPath::kLockFree;
};

/// Parses a `--read-path` value: "lockfree" or "queued". Returns false
/// (leaving `*path` untouched) on anything else — the CLI turns that into a
/// usage error.
bool ParseReadPath(const std::string& text, ServerOptions::ReadPath* path);

/// Per-shard serving statistics (stats endpoint `shards` array).
struct ShardStats {
  uint64_t batches = 0;  ///< routed batches that touched this shard
  uint64_t ops = 0;      ///< adds + removes dispatched to this shard
  size_t queue_depth = 0;      ///< shard worker queue depth right now
  size_t queue_depth_max = 0;  ///< high watermark since start
};

/// Point-in-time server statistics (also served by the stats endpoint).
struct ServerStats {
  uint64_t connections = 0;  ///< connections accepted
  uint64_t requests = 0;     ///< well-formed requests received
  uint64_t responses = 0;    ///< responses written (incl. errors/rejects)
  uint64_t rejected = 0;     ///< 429 admission rejects
  uint64_t refused_draining = 0;  ///< 503 during drain
  uint64_t malformed = 0;    ///< 400 parse failures
  uint64_t batches = 0;      ///< engine churn steps applied
  uint64_t coalesced_ops = 0;  ///< source update ops folded into batches
  uint64_t max_batch = 0;    ///< largest ops-per-batch seen
  size_t queue_depth = 0;
  size_t queue_depth_max = 0;  ///< engine-op queue high watermark
  uint64_t migrated = 0;     ///< queries moved between shards (router merges)
  double uptime_seconds = 0;  ///< seconds since Start
  std::vector<ShardStats> shards;  ///< one entry per engine shard
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Initializes the engine with `base` (its cost table and queries), then
  /// binds, listens and starts the acceptor, pool and engine workers.
  Status Start(const Instance& base);

  /// The bound TCP port (valid after Start).
  uint16_t port() const { return port_; }

  /// Initiates graceful drain: stop accepting, 503 new engine ops, finish
  /// the queue. Idempotent, callable from any thread (the shutdown
  /// endpoint and the CLI's SIGTERM watcher both land here).
  void RequestDrain();

  /// Blocks until a requested drain completes and every thread is joined.
  void Join();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  ServerStats GetStats() const;

  /// Engine-op queue depth right now.
  size_t QueueDepth() const { return queue_.Depth(); }

  /// Synchronously drains everything currently queued on the caller's
  /// thread. Only meaningful with engine_workers == 0 (embedding/test
  /// mode); with live workers it merely competes with them.
  void ProcessQueuedNow();

  /// Read access to shard 0's engine for equivalence checks in tests; takes
  /// the engine mutex. `fn` must not re-enter the server. With --shards 1
  /// (the default) shard 0 IS the whole engine; sharded deployments see one
  /// shard's slice — use WithShardedEngine for the merged view.
  void WithEngine(const std::function<void(const online::OnlineEngine&)>& fn);

  /// Read access to the full (possibly sharded) engine; same contract.
  void WithShardedEngine(
      const std::function<void(const online::ShardedEngine&)>& fn);

  /// The durability manager, or nullptr when serving non-durably. Valid
  /// after Start; the CLI uses it to report what recovery did.
  const durability::DurabilityManager* durability_manager() const {
    return durability_.get();
  }

  /// Path the Chrome trace-event file is written to on Join, or "" when
  /// trace export is not configured. Valid after Start (needs the port).
  std::string trace_file_path() const {
    return telemetry_.TraceFilePath(port_);
  }

 private:
  struct Connection {
    // Written once by the acceptor before the connection task is posted;
    // write_mu only serializes concurrent response writes to the socket.
    // mc3-lint: guard-ok(set once by the acceptor before the task is posted)
    int fd = -1;
    util::Mutex write_mu;
    ~Connection();
  };
  /// One queued engine op: the parsed request plus its response channel.
  struct PendingRequest {
    Request request;
    std::shared_ptr<Connection> conn;
    Timer enqueued;  ///< measures in-server latency per endpoint
    uint64_t trace_id = 0;  ///< nonzero only when tracing is on
    bool sampled = false;   ///< spans recorded for this request
    double queued_us = 0;   ///< trace-timebase push time (sampled only)
  };

  /// Atomically published cross-shard read snapshot: one pinned load gives
  /// readers a consistent set of per-shard views, the matching version
  /// vector (stats `versions`), the name table and the facade-level
  /// counters. Rebuilt and swapped after every applied batch; the displaced
  /// index is epoch-retired strictly before the views it references.
  struct ReadIndex {
    uint64_t seq = 0;  ///< index publish count (stats `view_seq`)
    /// Borrowed per-shard views, owned by the publisher/epoch pair; a view
    /// is retired only once no published index references it.
    std::vector<const online::EngineReadView*> shards;
    std::vector<uint64_t> versions;  ///< per-shard view versions
    /// Name table at publish time (shared: reused until interning grows it).
    std::shared_ptr<const std::vector<std::string>> names;
    online::EngineCounters counters;  ///< facade-level (not per-shard sums)
  };

  void AcceptLoop();
  void ConnectionLoop(const std::shared_ptr<Connection>& conn);
  void HandleLine(const std::shared_ptr<Connection>& conn,
                  const std::string& line,
                  concurrency::ReaderRegistration& reader);
  void EngineWorkerLoop();
  /// Pops one item (blocking unless `drain_only`), coalesces consecutive
  /// updates behind it, executes, responds. Returns false when the queue is
  /// closed and empty.
  bool ProcessNext(bool drain_only);

  /// Applies one net batch through the engine, dispatching per-shard jobs
  /// to the shard workers when they are running (engine_mu_ held).
  /// `trace_ids` are the sampled requests folded into the batch: each
  /// per-shard apply job records a shard_apply span carrying them.
  Result<online::UpdateStats> ApplyEngineUpdate(
      const std::vector<PropertySet>& add,
      const std::vector<PropertySet>& remove,
      const std::vector<uint64_t>& trace_ids) MC3_REQUIRES(engine_mu_);
  /// Folds the just-applied batch's routing into the per-shard counters and
  /// obs metrics (engine_mu_ held). `ops` is the batch's op count, charged
  /// to shard 0 when the engine is unsharded.
  void RecordShardWork(size_t ops) MC3_REQUIRES(engine_mu_);
  /// Body of shard worker `index`: drain the shard queue until closed.
  void ShardWorkerLoop(size_t index);

  void HandleUpdateBatch(std::vector<PendingRequest> batch);
  /// Writes `response`, recording the serialize stage (and span when the
  /// request is sampled) and the endpoint latency.
  void FinishTracedResponse(const PendingRequest& pending,
                            const std::string& response);
  void HandleSolve(const PendingRequest& pending);
  void HandleSnapshot(const PendingRequest& pending);
  void HandleCheckpoint(const PendingRequest& pending);

  /// Rebuilds and publishes the per-shard views flagged in `touched` (an
  /// empty vector republishes every shard) plus a fresh cross-shard index,
  /// then retires the displaced objects in root-unreachability order (index
  /// first, views after) and runs one reclamation pass. Called after every
  /// applied batch, before the acks render, so a client that saw its ack
  /// also reads its write (docs/serving.md#lock-free-reads).
  void PublishReadViews(const std::vector<bool>& touched)
      MC3_REQUIRES(engine_mu_);
  /// Lock-free `solve`/`snapshot`: pins an epoch, loads the index once and
  /// renders on the connection worker thread — byte-identical to the queued
  /// renderers at every published state.
  void HandleLockFreeRead(const std::shared_ptr<Connection>& conn,
                          const Request& request, uint64_t trace_id,
                          bool sampled, const Timer& latency,
                          concurrency::ReaderRegistration& reader);
  std::string RenderSolveFromIndex(const Request& request, uint64_t trace_id,
                                   const ReadIndex& index)
      MC3_REQUIRES_SHARED(epochs_);
  std::string RenderSnapshotFromIndex(const Request& request,
                                      uint64_t trace_id,
                                      const ReadIndex& index)
      MC3_REQUIRES_SHARED(epochs_);

  std::string RenderHealth(const Request& request);
  std::string RenderStats(const Request& request,
                          concurrency::ReaderRegistration& reader);
  std::string RenderWalStats(const Request& request);
  /// Prometheus text exposition of the whole obs registry plus server and
  /// shard stats, wrapped in a JSON envelope (`metrics` verb).
  std::string RenderMetrics(const Request& request);

  /// WAL-logs and trace-records one applied batch (engine_mu_ held).
  /// Returns the assigned WAL sequence (0 when not durable). Failures are
  /// counted in wal_errors_, not propagated: the batch is already applied
  /// and acknowledged state must not be rolled back.
  uint64_t PersistApplied(const std::vector<PropertySet>& add,
                          const std::vector<PropertySet>& remove,
                          const std::vector<uint64_t>& trace_ids)
      MC3_REQUIRES(engine_mu_);
  /// Fires a policy-triggered checkpoint if one is due (engine_mu_ held).
  void MaybeCheckpoint() MC3_REQUIRES(engine_mu_);

  /// Interns `names` into the engine's property table (engine_mu_ held).
  PropertySet InternQuery(const std::vector<std::string>& names)
      MC3_REQUIRES(engine_mu_);
  /// Prices unknown classifiers of `added` at options_.default_cost
  /// (engine_mu_ held; no-op when default_cost < 0).
  Status PriceUnknown(const std::vector<PropertySet>& added)
      MC3_REQUIRES(engine_mu_);

  void WriteResponse(const std::shared_ptr<Connection>& conn,
                     const std::string& line);
  void ObserveLatency(const Request& request, double seconds);

  // mc3-lint: guard-ok(frozen by the constructor and Start before any thread launches)
  ServerOptions options_;
  // mc3-lint: guard-ok(written once in Start, read-only afterwards)
  uint16_t port_ = 0;
  // mc3-lint: guard-ok(owned by Start then the acceptor thread; Join runs after its exit)
  int listen_fd_ = -1;
  ///< unblocks the acceptor's poll on drain
  // mc3-lint: guard-ok(opened in Start before threads; pipe writes are async-signal-safe)
  int wake_pipe_[2] = {-1, -1};

  BoundedQueue<PendingRequest> queue_;
  // mc3-lint: guard-ok(created in Start before the acceptor that uses it)
  std::unique_ptr<WorkerPool> pool_;
  // mc3-lint: guard-ok(launched in Start, joined only by Join)
  std::thread acceptor_;
  // mc3-lint: guard-ok(launched in Start, joined only by Join)
  std::vector<std::thread> engine_threads_;

  util::Mutex engine_mu_;
  online::ShardedEngine engine_ MC3_GUARDED_BY(engine_mu_);
  std::vector<std::string> names_ MC3_GUARDED_BY(engine_mu_);
  std::unordered_map<std::string, PropertyId> interned_
      MC3_GUARDED_BY(engine_mu_);

  /// Lock-free read path (docs/serving.md#lock-free-reads): per-shard view
  /// publishers plus the cross-shard index root, reclaimed through epochs.
  /// All publishing happens under engine_mu_ (single writer); readers pin
  /// an epoch per read and never lock.
  concurrency::EpochManager epochs_;
  // Publication slots: swapped only under engine_mu_, read lock-free under
  // an epoch pin per concurrency/epoch.h.
  std::vector<std::unique_ptr<
      concurrency::VersionedPublisher<online::EngineReadView>>>
      view_publishers_;
  concurrency::VersionedPublisher<ReadIndex> index_publisher_;
  /// Name-table snapshot shared by published indexes; refreshed by
  /// PublishReadViews whenever interning grew the table.
  std::shared_ptr<const std::vector<std::string>> published_names_
      MC3_GUARDED_BY(engine_mu_);

  /// Shard workers (only with shards > 1 and live engine workers): one
  /// small job queue + thread per shard. Counters are Server-level atomics
  /// so the inline stats path never touches engine_mu_.
  struct ShardCounters {
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> ops{0};
    std::atomic<uint64_t> queue_depth_max{0};  ///< high watermark
  };
  // mc3-lint: guard-ok(filled in Start before the shard workers launch, immutable after)
  std::vector<std::unique_ptr<BoundedQueue<std::function<void()>>>>
      shard_queues_;
  // mc3-lint: guard-ok(launched in Start, joined only by Join)
  std::vector<std::thread> shard_threads_;
  // mc3-lint: guard-ok(sized by the constructor; elements are atomics)
  std::vector<ShardCounters> shard_counters_;
  std::atomic<uint64_t> migrated_{0};

  /// Durability state (engine_mu_ guards all manager calls except the
  /// thread-safe GetWalStats). Null when serving non-durably.
  // mc3-lint: guard-ok(pointer set once in Start; manager calls go through engine_mu_)
  std::unique_ptr<durability::DurabilityManager> durability_;
  ///< --record-trace sink
  std::FILE* trace_recorder_ MC3_GUARDED_BY(engine_mu_) = nullptr;
  std::atomic<uint64_t> wal_errors_{0};

  util::Mutex conns_mu_;
  std::vector<std::weak_ptr<Connection>> conns_ MC3_GUARDED_BY(conns_mu_);

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  util::Mutex drain_mu_;
  util::CondVar drain_cv_;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> refused_draining_{0};
  std::atomic<uint64_t> malformed_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> coalesced_ops_{0};
  std::atomic<uint64_t> max_batch_{0};
  std::atomic<uint64_t> queue_depth_max_{0};

  /// Request tracing + stage telemetry (internally synchronized; a no-op
  /// stub when the obs layer is compiled out).
  // mc3-lint: guard-ok(constructed before Start, internally synchronized)
  ServingTelemetry telemetry_;
  /// Start time for `health`/`metrics` uptime reporting.
  // mc3-lint: guard-ok(reset once in Start, read-only afterwards)
  Timer uptime_;
};

}  // namespace mc3::server
