// Bounded multi-producer queue feeding the serving engine's workers.
//
// Connection threads (producers) push parsed requests with TryPush, which
// never blocks: a full queue is an admission-control signal, not a wait
// (the caller turns it into a 429-style reject with a Retry-After hint, see
// docs/serving.md). Engine workers (consumers) block in Pop; the update
// coalescer uses TryPopIf to drain the maximal run of consecutive update
// requests at the head without reordering reads past writes.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <utility>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace mc3::server {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Enqueues `item` unless the queue is full or closed. Never blocks.
  bool TryPush(T item) {
    {
      util::MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// nullopt means closed-and-empty (consumer should exit).
  std::optional<T> Pop() {
    util::MutexLock lock(mu_);
    ready_.Wait(mu_, [this]() MC3_REQUIRES(mu_) {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Pops the head only when present and `pred(head)` holds. Never blocks.
  std::optional<T> TryPopIf(const std::function<bool(const T&)>& pred) {
    util::MutexLock lock(mu_);
    if (items_.empty() || !pred(items_.front())) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects all future pushes and wakes blocked consumers; items already
  /// queued are still delivered (graceful drain).
  void Close() {
    {
      util::MutexLock lock(mu_);
      closed_ = true;
    }
    ready_.NotifyAll();
  }

  size_t Depth() const {
    util::MutexLock lock(mu_);
    return items_.size();
  }

  bool closed() const {
    util::MutexLock lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable util::Mutex mu_;
  util::CondVar ready_;
  std::deque<T> items_ MC3_GUARDED_BY(mu_);
  bool closed_ MC3_GUARDED_BY(mu_) = false;
};

}  // namespace mc3::server
