// Bounded multi-producer queue feeding the serving engine's workers.
//
// Connection threads (producers) push parsed requests with TryPush, which
// never blocks: a full queue is an admission-control signal, not a wait
// (the caller turns it into a 429-style reject with a Retry-After hint, see
// docs/serving.md). Engine workers (consumers) block in Pop; the update
// coalescer uses TryPopIf to drain the maximal run of consecutive update
// requests at the head without reordering reads past writes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>

namespace mc3::server {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Enqueues `item` unless the queue is full or closed. Never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// nullopt means closed-and-empty (consumer should exit).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Pops the head only when present and `pred(head)` holds. Never blocks.
  std::optional<T> TryPopIf(const std::function<bool(const T&)>& pred) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty() || !pred(items_.front())) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects all future pushes and wakes blocked consumers; items already
  /// queued are still delivered (graceful drain).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t Depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mc3::server
