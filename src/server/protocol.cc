#include "server/protocol.h"

#include <cmath>

#include "obs/json.h"

namespace mc3::server {
namespace {

/// Extracts "add"/"remove" members: arrays of arrays of strings.
Status ParseQueryLists(const obs::JsonValue& value, const char* key,
                       std::vector<std::vector<std::string>>* out) {
  const obs::JsonValue* lists = value.Find(key);
  if (lists == nullptr) return Status::OK();
  if (!lists->is_array()) {
    return Status::InvalidArgument(std::string("\"") + key +
                                   "\" must be an array of queries");
  }
  for (const obs::JsonValue& query : lists->array) {
    if (!query.is_array() || query.array.empty()) {
      return Status::InvalidArgument(
          std::string("every \"") + key +
          "\" entry must be a non-empty array of property names");
    }
    std::vector<std::string> names;
    names.reserve(query.array.size());
    for (const obs::JsonValue& name : query.array) {
      if (!name.is_string() || name.string.empty()) {
        return Status::InvalidArgument(
            std::string("property names in \"") + key +
            "\" must be non-empty strings");
      }
      // Property names double as tokens of the update_trace line format
      // (WAL payloads, --record-trace); admit only names that round-trip
      // through it so an accepted update is always serializable.
      for (const char c : name.string) {
        if (c == ' ' || c == '\t' || c == ',' ||
            static_cast<unsigned char>(c) < 0x20 || c == 0x7f) {
          return Status::InvalidArgument(
              std::string("property names in \"") + key +
              "\" must not contain whitespace, commas or control "
              "characters");
        }
      }
      if (name.string == "+" || name.string == "-") {
        return Status::InvalidArgument(
            std::string("property names in \"") + key +
            "\" must not be a bare '+' or '-' marker");
      }
      names.push_back(name.string);
    }
    out->push_back(std::move(names));
  }
  return Status::OK();
}

}  // namespace

const char* OpName(Request::Op op) {
  switch (op) {
    case Request::Op::kHealth:
      return "health";
    case Request::Op::kStats:
      return "stats";
    case Request::Op::kSolve:
      return "solve";
    case Request::Op::kUpdate:
      return "update";
    case Request::Op::kSnapshot:
      return "snapshot";
    case Request::Op::kCheckpoint:
      return "checkpoint";
    case Request::Op::kWalStats:
      return "wal_stats";
    case Request::Op::kMetrics:
      return "metrics";
    case Request::Op::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

Result<Request> ParseRequest(const std::string& line) {
  auto parsed = obs::ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  const obs::JsonValue& value = *parsed;
  if (!value.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const obs::JsonValue* op = value.Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::InvalidArgument("request needs a string \"op\" member");
  }
  Request request;
  if (op->string == "health") {
    request.op = Request::Op::kHealth;
  } else if (op->string == "stats") {
    request.op = Request::Op::kStats;
  } else if (op->string == "solve") {
    request.op = Request::Op::kSolve;
  } else if (op->string == "update") {
    request.op = Request::Op::kUpdate;
  } else if (op->string == "snapshot") {
    request.op = Request::Op::kSnapshot;
  } else if (op->string == "checkpoint") {
    request.op = Request::Op::kCheckpoint;
  } else if (op->string == "wal_stats") {
    request.op = Request::Op::kWalStats;
  } else if (op->string == "metrics") {
    request.op = Request::Op::kMetrics;
  } else if (op->string == "shutdown") {
    request.op = Request::Op::kShutdown;
  } else {
    return Status::InvalidArgument("unknown op \"" + op->string + "\"");
  }
  if (const obs::JsonValue* id = value.Find("id"); id != nullptr) {
    if (!id->is_number() || id->number < 0 ||
        id->number != std::floor(id->number)) {
      return Status::InvalidArgument(
          "\"id\" must be a non-negative integer");
    }
    request.id = static_cast<uint64_t>(id->number);
  }
  if (const obs::JsonValue* solution = value.Find("solution");
      solution != nullptr) {
    if (solution->kind != obs::JsonValue::Kind::kBool) {
      return Status::InvalidArgument("\"solution\" must be a boolean");
    }
    request.include_solution = solution->boolean;
  }
  MC3_RETURN_IF_ERROR(ParseQueryLists(value, "add", &request.add));
  MC3_RETURN_IF_ERROR(ParseQueryLists(value, "remove", &request.remove));
  if (request.op == Request::Op::kUpdate && request.add.empty() &&
      request.remove.empty()) {
    return Status::InvalidArgument(
        "update needs a non-empty \"add\" or \"remove\" member");
  }
  return request;
}

std::string RenderErrorResponse(uint64_t id, Request::Op op, int code,
                                const std::string& message,
                                double retry_after_ms) {
  obs::JsonWriter writer(/*compact=*/true);
  writer.BeginObject();
  writer.Key("id").Int(id);
  writer.Key("op").String(OpName(op));
  writer.Key("code").Int(static_cast<uint64_t>(code));
  writer.Key("error").String(message);
  if (retry_after_ms > 0) {
    writer.Key("retry_after_ms").Number(retry_after_ms);
  }
  writer.EndObject();
  return writer.Take();
}

}  // namespace mc3::server
