// Fixed-size worker pool executing posted tasks (mxtasking-style ingress:
// a bounded set of threads drains an unbounded task list). The server posts
// one connection-handling task per accepted socket, so the pool size bounds
// concurrent connections without a thread per client.
//
// Lambdas posted here run on pool threads: lint rule R6 (shared-mutable
// capture) covers Post bodies exactly like ParallelFor bodies — captured
// state mutated inside a posted task needs an atomic, a mutex, or
// per-task-owned data.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace mc3::server {

class WorkerPool {
 public:
  explicit WorkerPool(size_t num_workers) {
    workers_.reserve(num_workers);
    for (size_t i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~WorkerPool() { Shutdown(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues `task`; returns false after Shutdown (task dropped).
  bool Post(std::function<void()> task) {
    {
      util::MutexLock lock(mu_);
      if (shutdown_) return false;
      tasks_.push_back(std::move(task));
    }
    ready_.NotifyOne();
    return true;
  }

  /// Finishes every queued task, then joins the workers. Idempotent.
  void Shutdown() {
    {
      util::MutexLock lock(mu_);
      if (shutdown_) return;
      shutdown_ = true;
    }
    ready_.NotifyAll();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  size_t QueuedTasks() const {
    util::MutexLock lock(mu_);
    return tasks_.size();
  }

 private:
  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        util::MutexLock lock(mu_);
        ready_.Wait(mu_, [this]() MC3_REQUIRES(mu_) {
          return shutdown_ || !tasks_.empty();
        });
        if (tasks_.empty()) return;  // shutdown and drained
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  mutable util::Mutex mu_;
  util::CondVar ready_;
  std::deque<std::function<void()>> tasks_ MC3_GUARDED_BY(mu_);
  bool shutdown_ MC3_GUARDED_BY(mu_) = false;
  // Written only by the constructor, joined by Shutdown on the control
  // thread; never touched from pool threads.
  // mc3-lint: guard-ok(constructed once, joined only by Shutdown on the control thread)
  std::vector<std::thread> workers_;
};

}  // namespace mc3::server
