// Fixed-size worker pool executing posted tasks (mxtasking-style ingress:
// a bounded set of threads drains an unbounded task list). The server posts
// one connection-handling task per accepted socket, so the pool size bounds
// concurrent connections without a thread per client.
//
// Lambdas posted here run on pool threads: lint rule R6 (shared-mutable
// capture) covers Post bodies exactly like ParallelFor bodies — captured
// state mutated inside a posted task needs an atomic, a mutex, or
// per-task-owned data.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace mc3::server {

class WorkerPool {
 public:
  explicit WorkerPool(size_t num_workers) {
    workers_.reserve(num_workers);
    for (size_t i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~WorkerPool() { Shutdown(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues `task`; returns false after Shutdown (task dropped).
  bool Post(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return false;
      tasks_.push_back(std::move(task));
    }
    ready_.notify_one();
    return true;
  }

  /// Finishes every queued task, then joins the workers. Idempotent.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      shutdown_ = true;
    }
    ready_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  size_t QueuedTasks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_.size();
  }

 private:
  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        ready_.wait(lock, [&] { return shutdown_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // shutdown and drained
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> tasks_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mc3::server
