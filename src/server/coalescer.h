// Update coalescer: folds a run of small add/remove updates into one net
// batch applied as a single OnlineEngine churn step, amortizing the
// dirty-region repartition and component re-solves across concurrent
// clients (the batching analogue of sub-linear update work, Indyk et al.,
// arXiv:1902.03534).
//
// Semantics: operations fold in arrival order with last-op-wins per query,
// so the net batch — removes applied before adds by the engine, each query
// in at most one list — leaves the same live query set as applying the
// source operations one by one. Because the engine re-solves dirty
// components deterministically from the live set alone, the final solution
// is byte-identical either way (tests/determinism_test.cc holds this
// contract).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/property_set.h"

namespace mc3::server {

/// The net effect of a folded operation run.
struct NetUpdate {
  /// Queries whose last folded op was an add / a remove, in first-touch
  /// order (deterministic for a fixed arrival order).
  std::vector<PropertySet> add;
  std::vector<PropertySet> remove;
  size_t ops = 0;  ///< source operations folded in
};

class UpdateCoalescer {
 public:
  /// Folds one source operation.
  void Add(const PropertySet& query);
  void Remove(const PropertySet& query);

  /// Folds a whole (add, remove) request; removes fold before adds,
  /// matching OnlineEngine::ApplyUpdate's documented order (removes first)
  /// for a single batch.
  void Fold(const std::vector<PropertySet>& add,
            const std::vector<PropertySet>& remove);

  size_t ops() const { return ops_; }
  bool empty() const { return ops_ == 0; }

  /// Returns the net batch and resets the coalescer.
  NetUpdate Take();

 private:
  enum class LastOp { kAdd, kRemove };
  void Fold(const PropertySet& query, LastOp op);

  /// First-touch-ordered fold state; the map only indexes into the vector
  /// (never iterated), keeping emission order deterministic.
  std::vector<std::pair<PropertySet, LastOp>> entries_;
  std::unordered_map<PropertySet, size_t, PropertySetHash> index_;
  size_t ops_ = 0;
};

}  // namespace mc3::server
