#include "data/bestbuy.h"

#include <cmath>

#include <string>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace mc3::data {
namespace {

// Electronics vocabulary: a realistic named core, extended with numbered
// variants so ~1000 mostly-short distinct queries exist (the published
// dataset has 95% of queries with at most two properties, which needs a
// vocabulary far larger than a brand shortlist).
std::vector<std::string> MakeBrands() {
  std::vector<std::string> v = {
      "samsung", "apple",  "sony",      "lg",     "dell",   "hp",
      "lenovo",  "asus",   "acer",      "microsoft", "canon", "nikon",
      "bose",    "jbl",    "garmin",    "fitbit", "gopro",  "nintendo",
      "philips", "panasonic"};
  for (int i = static_cast<int>(v.size()); i < 600; ++i) {
    v.push_back("brand_" + std::to_string(i));
  }
  return v;
}

std::vector<std::string> MakeTypes() {
  std::vector<std::string> v = {
      "tv",         "laptop",  "tablet",     "phone",    "camera",
      "headphones", "speaker", "monitor",    "printer",  "router",
      "smartwatch", "console", "keyboard",   "mouse",    "drone",
      "projector",  "soundbar", "microwave", "vacuum",   "earbuds"};
  for (int i = static_cast<int>(v.size()); i < 700; ++i) {
    v.push_back("type_" + std::to_string(i));
  }
  return v;
}

std::vector<std::string> MakeFeatures() {
  std::vector<std::string> v = {
      "4k",       "oled",     "wireless",    "bluetooth",        "gaming",
      "portable", "curved",   "touchscreen", "noise_cancelling", "smart",
      "hd",       "compact",  "refurbished", "waterproof",       "mini",
      "pro",      "ultra",    "budget",      "premium",          "hdr"};
  for (int i = static_cast<int>(v.size()); i < 200; ++i) {
    v.push_back("feature_" + std::to_string(i));
  }
  return v;
}

/// Skewed pick (u^1.6): popular entries recur — the reuse real query logs
/// show — while the long tail keeps the distinct-property count high, so
/// the Property-Oriented baseline pays for more singletons than there are
/// queries (the Figure 3a ordering).
const std::string& Pick(const std::vector<std::string>& pool, Rng* rng) {
  const double u = rng->UniformDouble();
  auto idx = static_cast<size_t>(std::pow(u, 1.2) *
                                 static_cast<double>(pool.size()));
  if (idx >= pool.size()) idx = pool.size() - 1;
  return pool[idx];
}

}  // namespace

Instance GenerateBestBuy(const BestBuyConfig& config) {
  Rng rng(config.seed);
  const std::vector<std::string> brands = MakeBrands();
  const std::vector<std::string> types = MakeTypes();
  const std::vector<std::string> features = MakeFeatures();

  InstanceBuilder builder;
  std::unordered_set<PropertySet, PropertySetHash> seen;

  size_t made = 0;
  while (made < config.num_queries) {
    // Length histogram 20% / 75% / 4% / 1% for lengths 1..4 — matching the
    // published "95% of queries have up to 2 properties" and max length 4.
    const double u = rng.UniformDouble();
    size_t length = u < 0.20 ? 1 : u < 0.95 ? 2 : u < 0.99 ? 3 : 4;

    bool accepted = false;
    for (int attempt = 0; attempt < 200 && !accepted; ++attempt) {
      std::vector<std::string> names;
      switch (length) {
        case 1:
          names.push_back(rng.Bernoulli(0.7) ? Pick(types, &rng)
                                             : Pick(brands, &rng));
          break;
        case 2:
          names.push_back(Pick(brands, &rng));
          names.push_back(Pick(types, &rng));
          break;
        case 3:
          names.push_back(Pick(brands, &rng));
          names.push_back(Pick(features, &rng));
          names.push_back(Pick(types, &rng));
          break;
        default:
          names.push_back(Pick(brands, &rng));
          names.push_back(Pick(features, &rng));
          names.push_back(Pick(features, &rng));
          names.push_back(Pick(types, &rng));
          break;
      }
      std::vector<PropertyId> ids;
      ids.reserve(names.size());
      for (const auto& n : names) ids.push_back(builder.Intern(n));
      const PropertySet query = PropertySet::FromUnsorted(ids);
      if (query.size() != length) continue;  // duplicate names drawn
      if (!seen.insert(query).second) {
        // Saturated? Widen the query once in a while so we cannot stall.
        if (attempt == 199 && length < 4) ++length;
        continue;
      }
      builder.AddQuery(names);
      accepted = true;
      ++made;
    }
  }

  const Cost cost = config.uniform_cost;
  builder.PriceAllClassifiers([cost](const PropertySet&) { return cost; });
  return std::move(builder).Build();
}

}  // namespace mc3::data
