// Reconstruction of the BestBuy dataset ("BB", Table 1): ~1000 electronics
// queries, uniform classifier costs, 95% of queries with at most two
// properties, maximum length 4. The original dump used by [13] is not
// distributed; this generator reproduces every marginal the paper states
// (count, cost uniformity, length histogram, max length) over a realistic
// electronics vocabulary with Zipf-like property reuse, which is what
// Figure 3a depends on. See DESIGN.md, "Substitutions".
#pragma once

#include <cstdint>

#include "core/instance.h"

namespace mc3::data {

/// Parameters of the BB-like workload; defaults follow Table 1.
struct BestBuyConfig {
  size_t num_queries = 1000;
  uint64_t seed = 7;
  /// All classifiers get this cost (the BB dataset has uniform weights).
  Cost uniform_cost = 1;
};

/// Generates the dataset (deterministic for a fixed config). Property names
/// are electronics-domain strings ("samsung", "tv", "wireless", ...).
Instance GenerateBestBuy(const BestBuyConfig& config);

}  // namespace mc3::data

