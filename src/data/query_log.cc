#include "data/query_log.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>
#include "util/float_cmp.h"

namespace mc3::data {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : line) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current += static_cast<char>(std::tolower(c));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

}  // namespace

QueryLog ParseQueryLog(const std::vector<std::string>& lines,
                       const QueryLogOptions& options) {
  const std::unordered_set<std::string> stopwords(options.stopwords.begin(),
                                                  options.stopwords.end());
  QueryLog log;
  log.total_lines = lines.size();

  InstanceBuilder builder;
  // property-set -> (query index in builder order) for aggregation.
  std::unordered_map<PropertySet, size_t, PropertySetHash> index;
  std::vector<std::vector<std::string>> query_names;
  std::vector<size_t> counts;

  for (const std::string& line : lines) {
    std::vector<std::string> tokens = Tokenize(line);
    std::vector<std::string> kept;
    std::unordered_set<std::string> seen;
    for (auto& token : tokens) {
      if (stopwords.count(token) > 0) continue;
      if (seen.insert(token).second) kept.push_back(std::move(token));
    }
    if (kept.empty() || kept.size() > options.max_query_length) {
      ++log.dropped_lines;
      continue;
    }
    std::vector<PropertyId> ids;
    ids.reserve(kept.size());
    for (const auto& name : kept) ids.push_back(builder.Intern(name));
    const PropertySet query = PropertySet::FromUnsorted(std::move(ids));
    const auto [it, inserted] = index.emplace(query, counts.size());
    if (inserted) {
      query_names.push_back(std::move(kept));
      counts.push_back(1);
    } else {
      ++counts[it->second];
    }
  }

  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] < options.min_frequency) {
      log.dropped_lines += counts[i];
      continue;
    }
    builder.AddQuery(query_names[i]);
    log.frequency.push_back(counts[i]);
  }
  log.instance = std::move(builder).Build();
  return log;
}

Status EstimateCosts(Instance* instance,
                     const CostEstimatorOptions& options) {
  if (options.subadditivity <= 0 || options.floor_factor < 0 ||
      options.default_difficulty < 0) {
    return Status::InvalidArgument("cost estimator parameters must be >= 0");
  }
  const auto& names = instance->property_names();
  auto difficulty = [&](PropertyId p) -> Cost {
    if (p < names.size()) {
      const auto it = options.property_difficulty.find(names[p]);
      if (it != options.property_difficulty.end()) return it->second;
    }
    return options.default_difficulty;
  };
  for (const PropertySet& q : instance->queries()) {
    ForEachNonEmptySubset(q, [&](const PropertySet& classifier) {
      if (!IsInfiniteCost(instance->CostOf(classifier))) return;
      Cost sum = 0;
      Cost min_part = kInfiniteCost;
      for (PropertyId p : classifier) {
        const Cost d = difficulty(p);
        sum += d;
        min_part = std::min(min_part, d);
      }
      Cost cost = classifier.size() == 1 ? sum : options.subadditivity * sum;
      cost = std::max(cost, options.floor_factor * min_part);
      instance->SetCost(classifier, cost);
    });
  }
  return Status::OK();
}

}  // namespace mc3::data
