#include "data/io.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

#include "util/csv.h"

namespace mc3::data {
namespace {

std::string PropertyName(const Instance& instance, PropertyId p) {
  const auto& names = instance.property_names();
  if (p < names.size() && !names[p].empty()) return names[p];
  return std::to_string(p);
}

}  // namespace

std::string InstanceToCsv(const Instance& instance) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"# MC3 instance: Q,<props...> / C,<cost>,<props...>"});
  for (const PropertySet& q : instance.queries()) {
    std::vector<std::string> row{"Q"};
    for (PropertyId p : q) row.push_back(PropertyName(instance, p));
    rows.push_back(std::move(row));
  }
  // Deterministic classifier order.
  std::vector<const PropertySet*> order;
  // mc3-lint: unordered-ok(sorted into the canonical order just below)
  for (const auto& [classifier, cost] : instance.costs()) {
    order.push_back(&classifier);
  }
  std::sort(order.begin(), order.end(),
            [](const PropertySet* a, const PropertySet* b) { return *a < *b; });
  for (const PropertySet* c : order) {
    std::vector<std::string> row{"C"};
    std::ostringstream cost;
    cost << instance.CostOf(*c);
    row.push_back(cost.str());
    for (PropertyId p : *c) row.push_back(PropertyName(instance, p));
    rows.push_back(std::move(row));
  }
  return FormatCsv(rows);
}

Result<Instance> InstanceFromCsv(const std::string& text) {
  auto doc = ParseCsv(text);
  if (!doc.ok()) return doc.status();
  InstanceBuilder builder;
  for (size_t r = 0; r < doc->rows.size(); ++r) {
    const auto& row = doc->rows[r];
    if (row.empty()) continue;
    const std::string& kind = row[0];
    if (kind == "Q") {
      if (row.size() < 2) {
        return Status::IOError("row " + std::to_string(r) +
                               ": query with no properties");
      }
      builder.AddQuery({row.begin() + 1, row.end()});
    } else if (kind == "C") {
      if (row.size() < 3) {
        return Status::IOError("row " + std::to_string(r) +
                               ": classifier needs a cost and a property");
      }
      double cost = 0;
      const auto& s = row[1];
      const auto [ptr, ec] =
          std::from_chars(s.data(), s.data() + s.size(), cost);
      if (ec != std::errc() || ptr != s.data() + s.size() || cost < 0) {
        return Status::IOError("row " + std::to_string(r) +
                               ": bad cost '" + s + "'");
      }
      builder.SetCost({row.begin() + 2, row.end()}, cost);
    } else {
      return Status::IOError("row " + std::to_string(r) +
                             ": unknown row kind '" + kind + "'");
    }
  }
  Instance instance = std::move(builder).Build();
  MC3_RETURN_IF_ERROR(instance.Validate());
  return instance;
}

std::string SolutionToCsv(const Instance& instance,
                          const Solution& solution) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"# MC3 plan: C,<cost>,<props...>"});
  for (const PropertySet& c : solution.Sorted()) {
    std::vector<std::string> row{"C"};
    std::ostringstream cost;
    cost << instance.CostOf(c);
    row.push_back(cost.str());
    for (PropertyId p : c) row.push_back(PropertyName(instance, p));
    rows.push_back(std::move(row));
  }
  return FormatCsv(rows);
}

Status SaveSolution(const Instance& instance, const Solution& solution,
                    const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << SolutionToCsv(instance, solution);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status SaveInstance(const Instance& instance, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << InstanceToCsv(instance);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Instance> LoadInstance(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return InstanceFromCsv(buf.str());
}

}  // namespace mc3::data
