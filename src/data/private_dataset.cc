#include "data/private_dataset.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/rng.h"
#include "util/float_cmp.h"

namespace mc3::data {
namespace {

struct CategorySpec {
  const char* name;
  size_t num_queries;
  size_t pool_size;
  /// Cumulative probability of each query length 1..6.
  double length_cdf[6];
};

/// Draws a query length from the category's distribution.
size_t DrawLength(const CategorySpec& spec, Rng* rng) {
  const double u = rng->UniformDouble();
  for (size_t l = 0; l < 6; ++l) {
    if (u < spec.length_cdf[l]) return l + 1;
  }
  return 6;
}

/// Skewed property pick: popular (low-id) properties recur much more often.
PropertyId PickProperty(size_t pool, Rng* rng) {
  const double u = rng->UniformDouble();
  auto idx = static_cast<size_t>(u * u * pool);
  if (idx >= pool) idx = pool - 1;
  return static_cast<PropertyId>(idx);
}

}  // namespace

std::vector<size_t> PrivateDataset::CategoryQueryIndices(
    const std::string& name) const {
  std::vector<size_t> indices;
  for (const auto& c : categories) {
    if (c.name == name) {
      for (size_t i = 0; i < c.num_queries; ++i) {
        indices.push_back(c.first_query + i);
      }
    }
  }
  return indices;
}

PrivateDataset GeneratePrivate(const PrivateConfig& config) {
  Rng rng(config.seed);
  PrivateDataset dataset;
  Instance& instance = dataset.instance;

  const CategorySpec specs[] = {
      // Electronics and Home & Garden: lengths 1-6, longer tail.
      {"electronics", config.electronics_queries, 3000,
       {0.24, 0.76, 0.88, 0.95, 0.99, 1.0}},
      {"home_garden", config.home_garden_queries, 2000,
       {0.26, 0.78, 0.90, 0.96, 0.99, 1.0}},
      // Fashion: 96% of queries of length <= 2 (paper Section 6.1).
      {"fashion", config.fashion_queries, 800,
       {0.34, 0.96, 0.99, 1.0, 1.0, 1.0}},
  };

  // Property ids are globally dense: each category owns a contiguous block,
  // so categories are property-disjoint (they model separate catalogs).
  std::vector<std::string> names;
  PropertyId next_property = 0;
  std::unordered_set<PropertySet, PropertySetHash> seen;
  for (const CategorySpec& spec : specs) {
    const PropertyId base = next_property;
    for (size_t i = 0; i < spec.pool_size; ++i) {
      names.push_back(std::string(spec.name) + ":p" + std::to_string(i));
    }
    next_property += static_cast<PropertyId>(spec.pool_size);

    PrivateDataset::Category category{spec.name, instance.NumQueries(), 0};
    while (category.num_queries < spec.num_queries) {
      const size_t length = DrawLength(spec, &rng);
      std::vector<PropertyId> props;
      std::unordered_set<PropertyId> used;
      while (props.size() < length) {
        const PropertyId p = base + PickProperty(spec.pool_size, &rng);
        if (used.insert(p).second) props.push_back(p);
      }
      PropertySet query = PropertySet::FromUnsorted(std::move(props));
      if (!seen.insert(query).second) continue;
      instance.AddQuery(std::move(query));
      ++category.num_queries;
    }
    dataset.categories.push_back(category);
  }
  instance.set_property_names(names);

  // Cost model. Singleton costs are skewed toward the cheap end of
  // [cost_min, cost_max]; conjunctions are usually sub-additive (cheaper
  // than the sum of their parts) and occasionally "easy" (cheaper than the
  // cheapest part) — the phenomenon motivating the whole problem.
  // Singleton costs are bimodal: "easy" properties (derivable from
  // structured data) are cheap, "hard" ones (picture/description-only, like
  // brand detection in Example 1.1) are expensive. Conjunctions involving a
  // hard property are often easy ("Adidas Juventus" has few variants),
  // which is exactly the paper's motivating phenomenon.
  const double lo = static_cast<double>(config.cost_min);
  const double hi = static_cast<double>(config.cost_max);
  std::unordered_map<PropertyId, Cost> singleton_cost;
  auto singleton = [&](PropertyId p) {
    const auto it = singleton_cost.find(p);
    if (it != singleton_cost.end()) return it->second;
    const double u = rng.UniformDouble();
    Cost c;
    if (rng.Bernoulli(0.45)) {
      c = lo + std::floor(u * u * std::min(hi - lo, 7.0) + 0.5);  // easy
    } else {
      const double hard_lo = std::min(hi, lo + 14);
      c = hard_lo + std::floor(u * u * (hi - hard_lo) + 0.5);  // hard
    }
    singleton_cost.emplace(p, c);
    return c;
  };
  auto clamp_cost = [&](double c) {
    return std::min<Cost>(static_cast<Cost>(config.cost_max),
                          std::max<Cost>(static_cast<Cost>(config.cost_min),
                                         std::floor(c + 0.5)));
  };
  for (const PropertySet& q : instance.queries()) {
    ForEachNonEmptySubset(q, [&](const PropertySet& classifier) {
      if (!IsInfiniteCost(instance.CostOf(classifier))) return;
      if (classifier.size() == 1) {
        instance.SetCost(classifier, singleton(*classifier.begin()));
        return;
      }
      // Only small building blocks (length <= 3) and the dedicated
      // full-query classifier are priced; other long conjunctions are
      // omitted (not enough training data to cost them in advance — the
      // "bounded classifiers" practice of Section 5.3).
      const bool is_full_query = classifier.size() == q.size();
      if (classifier.size() > 3 && !is_full_query) return;

      Cost sum = 0;
      Cost min_part = kInfiniteCost;
      Cost max_part = 0;
      for (PropertyId p : classifier) {
        const Cost c = singleton(p);
        sum += c;
        min_part = std::min(min_part, c);
        max_part = std::max(max_part, c);
      }
      // Conjunctions containing a hard property are easy more often (few
      // product variants satisfy the whole conjunction), and the effect
      // strengthens with length (more specific conjunctions).
      const bool contains_hard = max_part >= std::min(hi, lo + 14);
      const double boost =
          (contains_hard ? 2.6 : 0.3) * (classifier.size() >= 3 ? 1.4 : 1.0);
      const double easy_probability =
          std::min(boost * config.easy_conjunction_probability, 0.95);
      Cost cost;
      if (rng.Bernoulli(easy_probability)) {
        cost = clamp_cost(1 + 4 * rng.UniformDouble() +
                          0.1 * min_part * rng.UniformDouble());
      } else if (!contains_hard && classifier.size() == 2) {
        // All-easy pairs are barely sub-additive: both properties are
        // simple, so conjoining them saves little labeling work.
        cost = clamp_cost(sum * (0.78 + 0.18 * rng.UniformDouble()));
      } else {
        cost = clamp_cost(sum * (0.55 + 0.4 * rng.UniformDouble()));
      }
      instance.SetCost(classifier, cost);
    });
  }
  return dataset;
}

}  // namespace mc3::data
