// Instance (de)serialization in a simple CSV dialect, so workloads can be
// exported to / imported from catalog pipelines:
//
//   # comment lines start with '#'
//   Q,<prop>,<prop>,...          one row per query
//   C,<cost>,<prop>,<prop>,...   one row per priced classifier
//
// Properties are arbitrary strings, interned to dense ids on load.
#pragma once

#include <string>

#include "core/instance.h"
#include "core/solution.h"
#include "util/status.h"

namespace mc3::data {

/// Serializes `instance` to the CSV dialect above (using property names when
/// available, ids otherwise).
std::string InstanceToCsv(const Instance& instance);

/// Parses an instance from CSV text. Rows may appear in any order.
Result<Instance> InstanceFromCsv(const std::string& text);

/// File variants.
Status SaveInstance(const Instance& instance, const std::string& path);
Result<Instance> LoadInstance(const std::string& path);

/// Serializes a solved plan: one row per classifier to train,
/// `C,<cost>,<prop>,...`, in canonical order. The file is itself a valid
/// cost-table fragment of the instance CSV dialect.
std::string SolutionToCsv(const Instance& instance,
                          const mc3::Solution& solution);
Status SaveSolution(const Instance& instance, const mc3::Solution& solution,
                    const std::string& path);

}  // namespace mc3::data

