// Query-log ingestion: the front half of the paper's motivating pipeline.
//
// The introduction describes free-text searches ("white adidas juventus
// shirt") being translated into conjunctive property queries. This module
// implements a pragmatic version of that translation for building MC3
// instances out of raw search logs:
//
//   raw log lines ->  tokenize/normalize  ->  aggregate identical queries
//                 ->  property-set queries with frequencies
//                 ->  priced Instance (via a cost model) + query weights
//
// The frequencies feed the budgeted partial-cover extension directly
// (important queries = frequent queries).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/instance.h"
#include "util/status.h"

namespace mc3::data {

/// Tokenization / aggregation options.
struct QueryLogOptions {
  /// Tokens in this list are dropped ("shirt", "for", ...). Matching is
  /// case-insensitive after normalization.
  std::vector<std::string> stopwords = {"a",   "an",  "and", "for", "in",
                                        "of",  "on",  "the", "to",  "with"};
  /// Queries with more than this many distinct properties are dropped
  /// (mirrors the paper's omission of very long queries).
  size_t max_query_length = 10;
  /// Queries seen fewer than this many times are dropped (rare queries do
  /// not justify classifier construction).
  size_t min_frequency = 1;
};

/// Aggregated log: distinct property-set queries with frequencies.
struct QueryLog {
  Instance instance;  ///< queries only; no classifier costs yet
  /// frequency[i] = how often instance.queries()[i] occurred in the log.
  std::vector<size_t> frequency;
  size_t total_lines = 0;
  size_t dropped_lines = 0;  ///< empty/too-long/too-rare lines
};

/// Parses raw free-text log lines. Tokens are lowercased; non-alphanumeric
/// characters split tokens; stopwords are removed; duplicate tokens within
/// a line collapse (a property set). Lines that end up empty are dropped.
QueryLog ParseQueryLog(const std::vector<std::string>& lines,
                       const QueryLogOptions& options = {});

/// A simple classifier-cost estimator for ingested logs: every property p
/// gets a labeling difficulty (from `property_difficulty` when present,
/// `default_difficulty` otherwise), a singleton classifier costs its
/// difficulty, and a conjunction costs `subadditivity` times the sum of its
/// parts (clamped below by the cheapest part times `floor_factor`) — the
/// first-order shape of the costs the paper's data exhibits. Prices every
/// classifier in C_Q.
struct CostEstimatorOptions {
  std::unordered_map<std::string, Cost> property_difficulty;
  Cost default_difficulty = 5;
  double subadditivity = 0.75;
  double floor_factor = 0.4;
};
Status EstimateCosts(Instance* instance, const CostEstimatorOptions& options);

}  // namespace mc3::data

