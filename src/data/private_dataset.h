// Reconstruction of the private e-commerce dataset ("P", Table 1): 10,000
// popular queries of lengths 1-6, integer classifier costs in [1, 63], a
// union of category sub-datasets (Electronics, Fashion, Home & Garden), with
// the fashion category holding ~1000 queries of which 96% are short. The
// cost model reproduces the paper's motivating phenomenon: a conjunction
// classifier is sometimes cheaper than the sum — or even the minimum — of
// its parts. The real data is proprietary; see DESIGN.md, "Substitutions".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"

namespace mc3::data {

/// Parameters of the P-like workload; defaults follow Table 1.
struct PrivateConfig {
  uint64_t seed = 42;
  size_t electronics_queries = 5500;
  size_t home_garden_queries = 3500;
  size_t fashion_queries = 1000;
  int64_t cost_min = 1;
  int64_t cost_max = 63;
  /// Probability that a multi-property classifier is an "easy conjunction",
  /// cheaper than its cheapest part (the Adidas-Juventus effect of
  /// Example 1.1).
  double easy_conjunction_probability = 0.25;
};

/// The generated dataset with category extents (the paper's 1000-query
/// Figure-3d point is the fashion category specifically, not a random
/// sample).
struct PrivateDataset {
  Instance instance;
  struct Category {
    std::string name;
    size_t first_query;  ///< index into instance.queries()
    size_t num_queries;
  };
  std::vector<Category> categories;

  /// Query indices of the named category (empty when absent).
  std::vector<size_t> CategoryQueryIndices(const std::string& name) const;
};

/// Generates the dataset (deterministic for a fixed config).
PrivateDataset GeneratePrivate(const PrivateConfig& config);

}  // namespace mc3::data

