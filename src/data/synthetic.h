// The paper's synthetic dataset generator (Section 6.1):
//   * n queries (paper: 100,000);
//   * query length l >= 2 with probability 1/2^(l-1), lengths > 10 redrawn
//     (the paper omits them, "such long queries are rare in practice");
//   * properties drawn uniformly from a pool of n/t properties, with t
//     uniform in [2, sqrt(n)];
//   * every classifier in C_Q priced uniformly from [1, 50] (integers).
#pragma once

#include <cstdint>

#include "core/instance.h"

namespace mc3::data {

/// Parameters of the synthetic workload; defaults follow the paper.
struct SyntheticConfig {
  size_t num_queries = 100000;
  uint64_t seed = 1;
  /// Integer classifier costs are drawn uniformly from [cost_min, cost_max].
  int64_t cost_min = 1;
  int64_t cost_max = 50;
  size_t max_query_length = 10;
};

/// Generates the dataset. Deterministic for a fixed config. Queries are
/// distinct; when the property pool is too saturated to supply another
/// distinct query of the drawn length, the length is incremented (a
/// deviation only reachable at extreme pool sizes; documented in DESIGN.md).
Instance GenerateSynthetic(const SyntheticConfig& config);

}  // namespace mc3::data

