#include "data/synthetic.h"

#include <cmath>
#include <unordered_set>

#include "util/rng.h"
#include "util/float_cmp.h"

namespace mc3::data {

Instance GenerateSynthetic(const SyntheticConfig& config) {
  Rng rng(config.seed);
  const size_t n = config.num_queries;
  // t uniform in [2, sqrt(n)]; pool of n/t properties.
  const auto sqrt_n =
      std::max<uint64_t>(2, static_cast<uint64_t>(std::sqrt(double(n))));
  const uint64_t t = rng.UniformInt(2, sqrt_n);
  const size_t pool = std::max<size_t>(2, n / t);

  Instance instance;
  std::unordered_set<PropertySet, PropertySetHash> seen;
  // Safety valve: give up on the (practically unreachable) pathological
  // case where the query space is exhausted, rather than spin forever.
  size_t rounds = 0;
  const size_t max_rounds = 64 * n + 4096;
  while (seen.size() < n && ++rounds <= max_rounds) {
    // P(length = l) = 1/2^(l-1) for l >= 2; redraw lengths beyond the cap.
    size_t length = 2;
    while (rng.Bernoulli(0.5)) ++length;
    if (length > config.max_query_length) continue;
    length = std::min(length, pool);

    PropertySet query;
    bool inserted = false;
    for (int attempt = 0; attempt < 64 && !inserted; ++attempt) {
      std::vector<PropertyId> props;
      std::unordered_set<PropertyId> used;
      while (props.size() < length) {
        const auto p = static_cast<PropertyId>(rng.UniformInt(0, pool - 1));
        if (used.insert(p).second) props.push_back(p);
      }
      query = PropertySet::FromUnsorted(std::move(props));
      inserted = seen.insert(query).second;
      // Saturated at this length: widen the query rather than loop forever.
      if (!inserted && attempt == 63 && length < config.max_query_length &&
          length < pool) {
        ++length;
        attempt = 0;
      }
    }
    if (inserted) instance.AddQuery(std::move(query));
  }

  // Price every classifier in C_Q uniformly from [cost_min, cost_max].
  for (const PropertySet& q : instance.queries()) {
    ForEachNonEmptySubset(q, [&](const PropertySet& classifier) {
      if (IsInfiniteCost(instance.CostOf(classifier))) {
        instance.SetCost(classifier,
                         static_cast<Cost>(rng.UniformInt(
                             config.cost_min, config.cost_max)));
      }
    });
  }
  return instance;
}

}  // namespace mc3::data
