#include "concurrency/epoch.h"

namespace mc3::concurrency {

EpochManager::~EpochManager() {
  // Destruction contract: no reader is pinned and no registration
  // outlives the manager, so everything still retired is unreachable.
  util::MutexLock lock(retire_mu_);
  for (const Retired& r : retired_) r.deleter(r.object);
  retired_.clear();
}

void EpochManager::RetireErased(const void* object,
                                void (*deleter)(const void*)) {
  if (object == nullptr) return;
  const std::uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
  util::MutexLock lock(retire_mu_);
  retired_.push_back(Retired{object, deleter, epoch});
}

std::size_t EpochManager::AdvanceAndReclaim() {
  // Advance first so readers pinning from now on carry an epoch strictly
  // above every already-retired tag; then free the prefix of the retire
  // list no pinned reader can still reach. The slot scan happens under
  // retire_mu_ so the min is taken against a retire list that cannot
  // grow mid-decision.
  global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  std::vector<Retired> to_free;
  {
    util::MutexLock lock(retire_mu_);
    const std::uint64_t min_active = MinActiveEpoch();
    std::size_t kept = 0;
    for (Retired& r : retired_) {
      if (r.epoch < min_active) {
        to_free.push_back(r);
      } else {
        retired_[kept++] = r;
      }
    }
    retired_.resize(kept);
  }
  for (const Retired& r : to_free) r.deleter(r.object);
  total_reclaimed_.fetch_add(to_free.size(), std::memory_order_relaxed);
  return to_free.size();
}

std::size_t EpochManager::PendingRetired() const {
  util::MutexLock lock(retire_mu_);
  return retired_.size();
}

EpochManager::Slot* EpochManager::AcquireSlot() {
  util::MutexLock lock(slots_mu_);
  for (auto& slot : slots_) {
    if (!slot->in_use.load(std::memory_order_relaxed)) {
      slot->in_use.store(true, std::memory_order_relaxed);
      slot->epoch.store(kIdle, std::memory_order_seq_cst);
      return slot.get();
    }
  }
  slots_.push_back(std::make_unique<Slot>());
  slots_.back()->in_use.store(true, std::memory_order_relaxed);
  return slots_.back().get();
}

void EpochManager::ReleaseSlot(Slot* slot) {
  util::MutexLock lock(slots_mu_);
  slot->epoch.store(kIdle, std::memory_order_seq_cst);
  slot->in_use.store(false, std::memory_order_relaxed);
}

std::uint64_t EpochManager::MinActiveEpoch() const {
  std::uint64_t min_active = kIdle;
  util::MutexLock lock(slots_mu_);
  for (const auto& slot : slots_) {
    const std::uint64_t e = slot->epoch.load(std::memory_order_seq_cst);
    if (e < min_active) min_active = e;
  }
  return min_active;
}

}  // namespace mc3::concurrency
