// Epoch-based reclamation for lock-free read paths.
//
// Writers publish immutable objects through an atomic root pointer
// (concurrency/versioned_publisher.h) and retire the displaced objects
// here instead of deleting them; readers pin the current epoch for the
// duration of a read and dereference the root without taking any lock. A
// retired object is freed only once every reader that could still reach
// it has unpinned — the classic RCU/EBR grace-period discipline (see
// docs/serving.md, "Lock-free reads", for the serving-stack wiring).
//
// Memory-ordering contract (all root swaps, pins and the writer's epoch
// reads use seq_cst so the proof below is a plain total-order argument):
//
//   * Retire(o) tags o with the global epoch R read *after* o became
//     unreachable from every published root.
//   * A reader that can still reach o loaded the root before that swap,
//     and its Pin stored a slot epoch e <= R before the load (Pin
//     re-checks the global epoch after publishing its slot, so the slot
//     value never lags the global epoch at the time of the root load).
//   * AdvanceAndReclaim frees o only when the minimum over all pinned
//     slots exceeds R — i.e. after every such reader has unpinned.
//   * A reader that pins *after* reclamation became possible observes an
//     epoch > R, hence (seq_cst) also observes the new root: it can no
//     longer reach o.
//
// Callers own the ordering obligation in the first bullet: retire an
// object only after it is unreachable from every root a reader could
// follow to it (swap all roots first, then retire — see
// Server::PublishReadViews for the multi-root case).
//
// Readers are registered threads (ReaderRegistration, slot allocation
// under a mutex, expected once per connection); Pin/Unpin (ReadGuard) on
// a registered slot are wait-free apart from the bounded re-check loop
// and touch no shared mutable state other than the slot itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace mc3::concurrency {

class ReaderRegistration;
class ReadGuard;

/// Grace-period tracker: per-reader epoch slots plus a deferred retire
/// list. Writers Retire displaced objects and call AdvanceAndReclaim
/// after publishing; readers pin via ReadGuard. The annotation layer
/// models the manager itself as a capability held in shared mode while a
/// read is pinned (MC3_REQUIRES_SHARED on view accessors).
class MC3_CAPABILITY("epoch") EpochManager {
 public:
  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Frees everything still on the retire list. No reader may be pinned
  /// and no registration may outlive the manager.
  ~EpochManager();

  /// Hands `object` to the manager for deferred deletion. Must be called
  /// only after `object` is unreachable from every published root. The
  /// templated overload deletes via the static type; prefer it over the
  /// erased form. Thread-safe (internal mutex, writer-side only).
  template <typename T>
  void Retire(const T* object) {
    // mc3-lint: new-delete-ok(EBR is the deferred-RAII layer; this IS the deleter)
    RetireErased(object, [](const void* p) { delete static_cast<const T*>(p); });
  }

  /// Advances the global epoch and frees every retired object whose tag
  /// is below the minimum epoch still pinned by a reader. Returns the
  /// number of objects freed. Writer-side; thread-safe.
  std::size_t AdvanceAndReclaim();

  /// Retired objects not yet freed (writer-side bookkeeping, for the
  /// `epoch.retired` gauge).
  std::size_t PendingRetired() const;

  /// Total objects freed so far.
  std::uint64_t TotalReclaimed() const {
    return total_reclaimed_.load(std::memory_order_relaxed);
  }

  /// Current global epoch (monotonically increasing; starts at 1 so the
  /// idle sentinel can never collide with a real epoch).
  std::uint64_t CurrentEpoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }

 private:
  friend class ReaderRegistration;
  friend class ReadGuard;

  /// Slot value meaning "this reader is not in a critical section".
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  // A reader thread's published epoch. Heap-allocated and owned by the
  // manager so ReaderRegistration handles can come and go while writers
  // scan a stable set; freed slots are pooled for reuse.
  struct Slot {
    // Lock-free: the single writer is the owning reader thread (Pin/Unpin);
    // writers scan with seq_cst loads. The grace-period proof in the header
    // comment is the synchronization argument.
    std::atomic<std::uint64_t> epoch{kIdle};
    // Transitions only under slots_mu_ (atomic so MinActiveEpoch's scan of
    // live slots never races a release).
    std::atomic<bool> in_use{false};
  };

  struct Retired {
    const void* object;
    void (*deleter)(const void*);
    std::uint64_t epoch;  // global epoch when retired
  };

  void RetireErased(const void* object, void (*deleter)(const void*));

  Slot* AcquireSlot() MC3_EXCLUDES(slots_mu_);
  void ReleaseSlot(Slot* slot) MC3_EXCLUDES(slots_mu_);

  /// Minimum epoch over all pinned readers (kIdle if none pinned).
  /// Seq_cst scan; safe without slots_mu_ because slots are never freed
  /// while the manager lives, but taking the snapshot under retire_mu_
  /// (as AdvanceAndReclaim does) keeps the reclaim decision atomic with
  /// respect to concurrent retires.
  std::uint64_t MinActiveEpoch() const;

  // Monotone counter, seq_cst everywhere; the proof in the header comment
  // is the synchronization argument.
  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<std::uint64_t> total_reclaimed_{0};

  mutable util::Mutex slots_mu_;
  std::vector<std::unique_ptr<Slot>> slots_ MC3_GUARDED_BY(slots_mu_);

  mutable util::Mutex retire_mu_;
  std::vector<Retired> retired_ MC3_GUARDED_BY(retire_mu_);
};

/// Registers the calling thread as a reader for the manager's lifetime
/// (or its own, whichever ends first). Construction/destruction take a
/// mutex; hold one per long-lived reader (e.g. per server connection),
/// then pin per read with ReadGuard — pinning itself is lock-free.
class ReaderRegistration {
 public:
  explicit ReaderRegistration(EpochManager& manager)
      : manager_(manager), slot_(manager.AcquireSlot()) {}
  ReaderRegistration(const ReaderRegistration&) = delete;
  ReaderRegistration& operator=(const ReaderRegistration&) = delete;
  ~ReaderRegistration() { manager_.ReleaseSlot(slot_); }

 private:
  friend class ReadGuard;
  EpochManager& manager_;
  EpochManager::Slot* slot_;
};

/// RAII epoch pin: while alive, no object retired at or after the pinned
/// epoch is freed, so pointers loaded from a VersionedPublisher root stay
/// valid. Shared capability over the EpochManager: any number of
/// ReadGuards may be alive at once, and functions that dereference
/// published views annotate MC3_REQUIRES_SHARED(manager).
class MC3_SCOPED_CAPABILITY ReadGuard {
 public:
  /// `manager` is named explicitly (and must be `reg`'s manager) so the
  /// annotation layer can match the caller's capability expression — the
  /// same reason util::MutexLock takes the mutex, not a handle to it.
  ReadGuard(EpochManager& manager, ReaderRegistration& reg)
      MC3_ACQUIRE_SHARED(manager)
      : slot_(*reg.slot_) {
    // Publish a candidate epoch, then re-check the global epoch: once the
    // loop exits, the slot value equals the global epoch at some instant
    // at-or-after the pin began, so any root pointer loaded afterwards is
    // protected (see the ordering proof in epoch.h's header comment).
    std::uint64_t e = manager.global_epoch_.load(std::memory_order_seq_cst);
    for (;;) {
      slot_.epoch.store(e, std::memory_order_seq_cst);
      const std::uint64_t now =
          manager.global_epoch_.load(std::memory_order_seq_cst);
      if (now == e) break;
      e = now;
    }
  }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;
  ~ReadGuard() MC3_RELEASE_SHARED() {
    slot_.epoch.store(EpochManager::kIdle, std::memory_order_seq_cst);
  }

 private:
  EpochManager::Slot& slot_;
};

}  // namespace mc3::concurrency
