// Lock-free publication slot for immutable, refcount-free objects.
//
// A VersionedPublisher<T> holds one atomic pointer to the current
// published value plus a monotonically increasing version counter. The
// writer builds a fresh immutable T off to the side, Publish()es it with
// a single atomic exchange, and hands the displaced value to an
// EpochManager (concurrency/epoch.h) for grace-period reclamation —
// readers meanwhile Acquire() the current pointer under a ReadGuard and
// dereference it with no locks, no reference counts and no copies.
//
// Ownership: published objects are heap-allocated by the writer and
// owned by the publisher/epoch-manager pair. Publish returns the
// displaced pointer; the caller must either Retire it (the normal case)
// or delete it (only when provably unreachable, e.g. before any reader
// exists). The destructor deletes the final published value.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/thread_annotations.h"

namespace mc3::concurrency {

template <typename T>
class VersionedPublisher {
 public:
  VersionedPublisher() = default;
  VersionedPublisher(const VersionedPublisher&) = delete;
  VersionedPublisher& operator=(const VersionedPublisher&) = delete;
  ~VersionedPublisher() {
    // mc3-lint: new-delete-ok(owns the final published value; readers are gone)
    delete current_.load(std::memory_order_relaxed);
  }

  /// Swaps `next` in as the published value and returns the displaced
  /// one (nullptr on the first publish). Single-writer-at-a-time by
  /// contract (the serving stack publishes under engine_mu_); the
  /// exchange is seq_cst so readers that observe the new pointer also
  /// observe everything the writer wrote into *next beforehand, and the
  /// epoch-reclamation proof in epoch.h can order the swap against
  /// retires and pins. IMPORTANT: do not Retire the returned pointer
  /// until it is unreachable from every *other* published root too.
  const T* Publish(const T* next) {
    version_.fetch_add(1, std::memory_order_seq_cst);
    return current_.exchange(next, std::memory_order_seq_cst);
  }

  /// Current published value. Caller must hold a ReadGuard on the
  /// EpochManager that reclaims this publisher's retired values, and
  /// must drop the returned pointer before releasing the guard.
  const T* Acquire() const { return current_.load(std::memory_order_seq_cst); }

  /// Number of Publish calls so far. Monotone; readers pair it with the
  /// version stamped inside the published T itself when they need the
  /// version and pointer to agree (the pointer's embedded version is the
  /// authoritative one — this counter is a cheap gauge).
  std::uint64_t version() const {
    return version_.load(std::memory_order_seq_cst);
  }

 private:
  // Lock-free publication slot: seq_cst swap by a single writer, seq_cst
  // loads by epoch-pinned readers; reclamation is deferred through
  // EpochManager per the proof in concurrency/epoch.h.
  std::atomic<const T*> current_{nullptr};
  // Monotone counter bumped only by the single writer.
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace mc3::concurrency
