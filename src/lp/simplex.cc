#include "lp/simplex.h"

#include <cmath>
#include <limits>

namespace mc3::lp {
namespace {

constexpr double kTol = 1e-8;
/// Iterations of Dantzig pricing before switching to Bland's rule, which is
/// slower per step but provably cycle-free.
constexpr int kBlandThreshold = 20000;

/// Dense tableau simplex. Column layout: structural vars, then slack/surplus
/// vars, then artificial vars; the last column is the RHS. One extra row
/// holds the (phase-specific) objective.
class Tableau {
 public:
  Tableau(const LinearProgram& lp)
      : num_structural_(lp.num_vars), num_rows_(lp.constraints.size()) {
    // Count slack/surplus and artificial columns. Rows are normalized so
    // rhs >= 0 first (flipping the sense when multiplying by -1).
    senses_.reserve(num_rows_);
    rhs_.reserve(num_rows_);
    for (const auto& c : lp.constraints) {
      ConstraintSense sense = c.sense;
      double rhs = c.rhs;
      double sign = 1;
      if (rhs < 0) {
        sign = -1;
        rhs = -rhs;
        if (sense == ConstraintSense::kLessEqual) {
          sense = ConstraintSense::kGreaterEqual;
        } else if (sense == ConstraintSense::kGreaterEqual) {
          sense = ConstraintSense::kLessEqual;
        }
      }
      senses_.push_back(sense);
      rhs_.push_back(rhs);
      signs_.push_back(sign);
      if (sense != ConstraintSense::kEqual) ++num_slack_;
      if (sense != ConstraintSense::kLessEqual) ++num_artificial_;
    }
    num_cols_ = num_structural_ + num_slack_ + num_artificial_;
    a_.assign(num_rows_, std::vector<double>(num_cols_ + 1, 0.0));
    basis_.assign(num_rows_, -1);

    int slack_col = num_structural_;
    int art_col = num_structural_ + num_slack_;
    artificial_start_ = art_col;
    for (size_t i = 0; i < lp.constraints.size(); ++i) {
      auto& row = a_[i];
      for (const auto& [var, coeff] : lp.constraints[i].terms) {
        row[var] += signs_[i] * coeff;
      }
      row[num_cols_] = rhs_[i];
      switch (senses_[i]) {
        case ConstraintSense::kLessEqual:
          row[slack_col] = 1;
          basis_[i] = slack_col++;
          break;
        case ConstraintSense::kGreaterEqual:
          row[slack_col] = -1;
          ++slack_col;
          row[art_col] = 1;
          basis_[i] = art_col++;
          break;
        case ConstraintSense::kEqual:
          row[art_col] = 1;
          basis_[i] = art_col++;
          break;
      }
    }
  }

  int num_cols() const { return num_cols_; }
  int artificial_start() const { return artificial_start_; }
  int num_artificial() const { return num_artificial_; }

  /// Runs simplex minimizing `costs` (size num_cols_) over non-forbidden
  /// columns. Returns kUnbounded if a descent direction has no ratio limit.
  LpOutcome Optimize(const std::vector<double>& costs,
                     const std::vector<bool>& forbidden) {
    // Reduced-cost row: z_j - c_j form. We maintain obj_row_[j] =
    // c_j - c_B . B^{-1} A_j (so entering columns have obj_row_[j] < 0).
    obj_row_.assign(num_cols_ + 1, 0.0);
    for (int j = 0; j <= num_cols_; ++j) {
      obj_row_[j] = (j < num_cols_) ? costs[j] : 0.0;
    }
    // Price out the current basis.
    for (int i = 0; i < num_rows_; ++i) {
      const double cb = costs[basis_[i]];
      if (cb != 0) {
        for (int j = 0; j <= num_cols_; ++j) obj_row_[j] -= cb * a_[i][j];
      }
    }

    int iterations = 0;
    while (true) {
      ++iterations;
      const bool bland = iterations > kBlandThreshold;
      // Pricing: pick the entering column.
      int enter = -1;
      double best = -kTol;
      for (int j = 0; j < num_cols_; ++j) {
        if (forbidden[j]) continue;
        if (obj_row_[j] < best) {
          if (bland) {
            enter = j;
            break;  // Bland: first improving column
          }
          best = obj_row_[j];
          enter = j;
        }
      }
      if (enter < 0) return LpOutcome::kOptimal;

      // Ratio test: pick the leaving row.
      int leave = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < num_rows_; ++i) {
        const double coeff = a_[i][enter];
        if (coeff > kTol) {
          const double ratio = a_[i][num_cols_] / coeff;
          if (ratio < best_ratio - kTol ||
              (ratio < best_ratio + kTol && leave >= 0 &&
               basis_[i] < basis_[leave])) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave < 0) return LpOutcome::kUnbounded;
      Pivot(leave, enter);
    }
  }

  /// Pivots so that column `enter` becomes basic in row `leave`.
  void Pivot(int leave, int enter) {
    auto& prow = a_[leave];
    const double pivot = prow[enter];
    for (int j = 0; j <= num_cols_; ++j) prow[j] /= pivot;
    prow[enter] = 1.0;  // exact
    for (int i = 0; i < num_rows_; ++i) {
      if (i == leave) continue;
      const double factor = a_[i][enter];
      if (std::abs(factor) < kTol) {
        a_[i][enter] = 0;
        continue;
      }
      for (int j = 0; j <= num_cols_; ++j) a_[i][j] -= factor * prow[j];
      a_[i][enter] = 0;  // exact
    }
    const double ofactor = obj_row_[enter];
    if (std::abs(ofactor) > 0) {
      for (int j = 0; j <= num_cols_; ++j) obj_row_[j] -= ofactor * prow[j];
      obj_row_[enter] = 0;
    }
    basis_[leave] = enter;
  }

  /// Objective value of the current basic solution for cost vector `costs`.
  double ObjectiveValue(const std::vector<double>& costs) const {
    double total = 0;
    for (int i = 0; i < num_rows_; ++i) {
      total += costs[basis_[i]] * a_[i][num_cols_];
    }
    return total;
  }

  /// Attempts to drive basic artificial variables (at value zero after
  /// phase 1) out of the basis; rows where this is impossible are redundant
  /// and their basic artificial stays at zero, harmlessly.
  void PivotOutArtificials() {
    for (int i = 0; i < num_rows_; ++i) {
      if (basis_[i] < artificial_start_) continue;
      for (int j = 0; j < artificial_start_; ++j) {
        if (std::abs(a_[i][j]) > kTol) {
          Pivot(i, j);
          break;
        }
      }
    }
  }

  /// Extracts structural variable values from the current basis.
  std::vector<double> StructuralValues() const {
    std::vector<double> x(num_structural_, 0.0);
    for (int i = 0; i < num_rows_; ++i) {
      if (basis_[i] < num_structural_) {
        x[basis_[i]] = a_[i][num_cols_];
      }
    }
    return x;
  }

 private:
  const int num_structural_;
  const int num_rows_;
  int num_slack_ = 0;
  int num_artificial_ = 0;
  int num_cols_ = 0;
  int artificial_start_ = 0;
  std::vector<ConstraintSense> senses_;
  std::vector<double> rhs_;
  std::vector<double> signs_;
  std::vector<std::vector<double>> a_;
  std::vector<double> obj_row_;
  std::vector<int> basis_;
};

}  // namespace

Result<LpSolution> SolveSimplex(const LinearProgram& lp) {
  if (lp.num_vars < 0) return Status::InvalidArgument("negative num_vars");
  if (static_cast<int32_t>(lp.objective.size()) > lp.num_vars) {
    return Status::InvalidArgument("objective longer than num_vars");
  }
  for (double c : lp.objective) {
    if (!std::isfinite(c)) {
      return Status::InvalidArgument("non-finite objective coefficient");
    }
  }
  for (const auto& c : lp.constraints) {
    if (!std::isfinite(c.rhs)) {
      return Status::InvalidArgument("non-finite constraint rhs");
    }
    for (const auto& [var, coeff] : c.terms) {
      if (var < 0 || var >= lp.num_vars) {
        return Status::InvalidArgument("constraint references unknown var");
      }
      if (!std::isfinite(coeff)) {
        return Status::InvalidArgument("non-finite constraint coefficient");
      }
    }
  }

  Tableau tableau(lp);
  const int num_cols = tableau.num_cols();

  // Phase 1: minimize the sum of artificial variables.
  if (tableau.num_artificial() > 0) {
    std::vector<double> phase1_costs(num_cols, 0.0);
    for (int j = tableau.artificial_start(); j < num_cols; ++j) {
      phase1_costs[j] = 1.0;
    }
    std::vector<bool> forbidden(num_cols, false);
    const LpOutcome outcome = tableau.Optimize(phase1_costs, forbidden);
    if (outcome == LpOutcome::kUnbounded) {
      // Phase-1 objective is bounded below by 0; unbounded indicates a bug.
      return Status::Internal("phase-1 LP reported unbounded");
    }
    if (tableau.ObjectiveValue(phase1_costs) > 1e-6) {
      LpSolution sol;
      sol.outcome = LpOutcome::kInfeasible;
      return sol;
    }
    tableau.PivotOutArtificials();
  }

  // Phase 2: minimize the true objective with artificials locked out.
  std::vector<double> costs(num_cols, 0.0);
  for (size_t j = 0; j < lp.objective.size(); ++j) costs[j] = lp.objective[j];
  std::vector<bool> forbidden(num_cols, false);
  for (int j = tableau.artificial_start(); j < num_cols; ++j) {
    forbidden[j] = true;
  }
  const LpOutcome outcome = tableau.Optimize(costs, forbidden);
  LpSolution sol;
  sol.outcome = outcome;
  if (outcome == LpOutcome::kOptimal) {
    sol.values = tableau.StructuralValues();
    sol.objective = 0;
    for (size_t j = 0; j < lp.objective.size(); ++j) {
      sol.objective += lp.objective[j] * sol.values[j];
    }
  }
  return sol;
}

}  // namespace mc3::lp
