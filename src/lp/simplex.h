// Dense two-phase primal simplex solver.
//
// Substrate for the LP-based f-approximation for Weighted Set Cover
// [Vazirani 2013, ch. 14] used by Algorithm 3: solve the LP relaxation
// min c.x s.t. (for each element) sum of x_S over covering sets >= 1,
// x >= 0, then round x_S >= 1/f up to 1.
//
// The solver handles general LPs (<=, >=, = constraints, non-negative
// variables, minimization). It is intended for the small-to-medium
// instances on which the literal LP-rounding variant runs; the scalable
// default f-approximation in this library is primal-dual (see
// setcover/primal_dual.h), which needs no LP solve.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"

namespace mc3::lp {

/// Direction of a linear constraint.
enum class ConstraintSense { kLessEqual, kGreaterEqual, kEqual };

/// A linear program: minimize objective . x subject to the constraints and
/// x >= 0.
struct LinearProgram {
  int32_t num_vars = 0;
  /// Objective coefficients (minimization); missing entries are zero.
  std::vector<double> objective;

  struct Constraint {
    /// Sparse row: (variable index, coefficient) pairs.
    std::vector<std::pair<int32_t, double>> terms;
    ConstraintSense sense = ConstraintSense::kLessEqual;
    double rhs = 0;
  };
  std::vector<Constraint> constraints;
};

/// Outcome class of a solve.
enum class LpOutcome { kOptimal, kInfeasible, kUnbounded };

/// Solution of a linear program.
struct LpSolution {
  LpOutcome outcome = LpOutcome::kOptimal;
  double objective = 0;        ///< valid when optimal
  std::vector<double> values;  ///< primal values, size num_vars
};

/// Solves `lp` with the two-phase tableau simplex (Dantzig pricing with a
/// Bland's-rule fallback for anti-cycling). Returns InvalidArgument on
/// malformed input (bad indices, non-finite coefficients).
Result<LpSolution> SolveSimplex(const LinearProgram& lp);

}  // namespace mc3::lp

