#include "core/solver.h"

namespace mc3 {

Result<SolveResult> FinishSolve(const Instance& instance, Solution solution,
                                bool prune_unused, bool verify) {
  if (verify && !Covers(instance, solution)) {
    return Status::Internal("solver produced a non-covering solution");
  }
  if (prune_unused) {
    solution = PruneUnusedClassifiers(instance, solution);
  }
  SolveResult result;
  result.cost = solution.TotalCost(instance);
  result.solution = std::move(solution);
  return result;
}

}  // namespace mc3
