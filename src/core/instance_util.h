// Instance manipulation helpers shared by solvers, generators and benches.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"

namespace mc3 {

/// Builds the sub-instance over the queries at `query_indices`, restricting
/// the cost table to classifiers relevant to those queries (members of the
/// sub-instance's C_Q). Property names are carried over.
Instance SubInstance(const Instance& instance,
                     const std::vector<size_t>& query_indices);

/// Sub-instance over a uniformly random subset of `count` queries (the
/// paper's experiments evaluate random query-subsets of varying
/// cardinality). Deterministic for a fixed seed; `count` is clamped to the
/// number of queries.
Instance RandomSubInstance(const Instance& instance, size_t count,
                           uint64_t seed);

/// Restricts the cost table to classifiers of length at most `max_length`
/// (the "bounded classifiers" regime of Section 5.3, k' < k), keeping
/// singletons so feasibility is preserved whenever singletons are priced.
Instance BoundClassifierLength(const Instance& instance, size_t max_length);

/// Assignment of queries to connected components of the shared-property
/// graph (paper Section 3, Observation 3.2): two queries are connected iff
/// they share a property, and connected queries must be solved together.
struct ComponentPartition {
  size_t num_components = 0;
  /// component_of[i] is the component (0..num_components-1) of the i-th
  /// partitioned query. Ids are assigned in order of first appearance, so
  /// the partition is deterministic for a fixed query order.
  std::vector<size_t> component_of;
};

/// Partitions the queries at `query_indices` (indices into `queries`) into
/// shared-property components. `component_of` is parallel to
/// `query_indices`.
ComponentPartition PartitionQueries(const std::vector<PropertySet>& queries,
                                    const std::vector<size_t>& query_indices);

/// Partitions all of `queries`.
ComponentPartition PartitionQueries(const std::vector<PropertySet>& queries);

/// Splits `instance` into its independent sub-instances (Algorithm 1
/// step 2), restricting each component's cost table to its relevant
/// classifiers. Unlike Preprocess, no pruning is applied: the components of
/// the raw instance are returned as-is. Solving the components separately
/// and uniting the solutions solves the original instance.
std::vector<Instance> DecomposeComponents(const Instance& instance);

}  // namespace mc3

