// Instance manipulation helpers shared by solvers, generators and benches.
#ifndef MC3_CORE_INSTANCE_UTIL_H_
#define MC3_CORE_INSTANCE_UTIL_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"

namespace mc3 {

/// Builds the sub-instance over the queries at `query_indices`, restricting
/// the cost table to classifiers relevant to those queries (members of the
/// sub-instance's C_Q). Property names are carried over.
Instance SubInstance(const Instance& instance,
                     const std::vector<size_t>& query_indices);

/// Sub-instance over a uniformly random subset of `count` queries (the
/// paper's experiments evaluate random query-subsets of varying
/// cardinality). Deterministic for a fixed seed; `count` is clamped to the
/// number of queries.
Instance RandomSubInstance(const Instance& instance, size_t count,
                           uint64_t seed);

/// Restricts the cost table to classifiers of length at most `max_length`
/// (the "bounded classifiers" regime of Section 5.3, k' < k), keeping
/// singletons so feasibility is preserved whenever singletons are priced.
Instance BoundClassifierLength(const Instance& instance, size_t max_length);

}  // namespace mc3

#endif  // MC3_CORE_INSTANCE_UTIL_H_
