// Algorithm 2: the exact PTIME solver for MC3 restricted to queries of
// length at most two (paper Section 4, Theorem 4.1).
//
// Pipeline: preprocessing (Algorithm 1) -> per component, reduce to
// bipartite Weighted Vertex Cover (left vertices = singleton classifiers,
// right vertices = length-2 classifiers, two edges per query) -> reduce to
// Max-Flow -> min cut -> translate the cover back to classifiers.
#pragma once

#include "core/solver.h"

namespace mc3 {

/// Exact solver for k <= 2 ("MC3[S]" in the paper's experiments). Returns
/// InvalidArgument when a query longer than two properties is present and
/// kInfeasible when no finite-cost solution exists.
class K2ExactSolver : public Solver {
 public:
  explicit K2ExactSolver(SolverOptions options = {})
      : options_(std::move(options)) {}

  std::string Name() const override { return "mc3s"; }
  Result<SolveResult> Solve(const Instance& instance) const override;

 private:
  SolverOptions options_;
};

}  // namespace mc3

