#include "core/general_solver.h"

#include "core/exact_solver.h"

#include "core/k2_solver.h"
#include "core/wsc_reduction.h"
#include "obs/trace.h"
#include "setcover/greedy.h"
#include "setcover/lp_rounding.h"
#include "setcover/primal_dual.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace mc3 {
namespace {

Status SolveComponent(const Instance& component, const SolverOptions& options,
                      Solution* out) {
  obs::ScopedSpan span("general_component");
  span.AddStat("queries", static_cast<double>(component.NumQueries()));
  // Extension: tiny components can be closed exactly.
  if (options.exact_component_max_queries > 0 &&
      component.NumQueries() <= options.exact_component_max_queries) {
    obs::ScopedSpan exact_span("exact_component");
    ExactSolver::Limits limits;
    limits.max_queries = options.exact_component_max_queries;
    auto exact = ExactSolver(limits).Solve(component);
    if (exact.ok()) {
      out->Merge(exact->solution);
      return Status::OK();
    }
    if (exact.status().code() != StatusCode::kInvalidArgument) {
      return exact.status();
    }
    // Too large for the oracle after all; fall through to approximation.
  }
  // All-short components are in the exact PTIME regime (Theorem 4.1): route
  // them through Algorithm 2 instead of the WSC approximation — the same
  // path they would take were they the whole instance. Only an upgrade of
  // the configured pipeline: with every WSC algorithm disabled the
  // misconfiguration error below still fires.
  const bool wsc_enabled =
      options.run_greedy || options.f_method != SolverOptions::FMethod::kNone;
  if (wsc_enabled && component.NumQueries() > 0 &&
      component.MaxQueryLength() <= 2) {
    SolverOptions k2_options = options;
    k2_options.num_threads = 1;          // already inside the component loop
    k2_options.verify_solution = false;  // the outer FinishSolve verifies
    k2_options.prune_unused = false;
    auto exact = K2ExactSolver(std::move(k2_options)).Solve(component);
    if (!exact.ok()) return exact.status();
    out->Merge(exact->solution);
    return Status::OK();
  }
  obs::ScopedSpan wsc_span("wsc");
  const WscReduction reduction = [&] {
    obs::ScopedSpan reduce_span("wsc_reduce");
    WscReduction r = ReduceToWsc(component);
    reduce_span.AddStat("elements",
                        static_cast<double>(r.wsc.num_elements));
    reduce_span.AddStat("sets", static_cast<double>(r.wsc.sets.size()));
    return r;
  }();

  bool have_best = false;
  setcover::WscSolution best;
  auto consider = [&](Result<setcover::WscSolution> candidate) -> Status {
    if (!candidate.ok()) return candidate.status();
    if (!have_best || candidate->cost < best.cost) {
      best = std::move(*candidate);
      have_best = true;
    }
    return Status::OK();
  };

  if (options.run_greedy) {
    MC3_RETURN_IF_ERROR(consider(setcover::SolveGreedy(reduction.wsc)));
  }
  switch (options.f_method) {
    case SolverOptions::FMethod::kNone:
      break;
    case SolverOptions::FMethod::kPrimalDual:
      MC3_RETURN_IF_ERROR(consider(setcover::SolvePrimalDual(reduction.wsc)));
      break;
    case SolverOptions::FMethod::kLpRounding:
      MC3_RETURN_IF_ERROR(consider(setcover::SolveLpRounding(reduction.wsc)));
      break;
  }
  if (!have_best) {
    return Status::InvalidArgument(
        "GeneralSolver configured with no WSC algorithm enabled");
  }
  const Solution mapped = WscSolutionToMc3(reduction, best);
  out->Merge(mapped);
  return Status::OK();
}

}  // namespace

Result<SolveResult> GeneralSolver::Solve(const Instance& instance) const {
  obs::ScopedSpan span("general_solver");
  Timer preprocess_timer;
  Solution solution;
  std::vector<Instance> components;
  size_t num_components;
  if (options_.preprocess) {
    auto pre = Preprocess(instance, options_.preprocess_options);
    if (!pre.ok()) return pre.status();
    solution.Merge(pre->forced);
    components = std::move(pre->components);
    num_components = components.size();
  } else {
    if (!instance.IsFeasible()) {
      return Status::Infeasible("no finite-cost solution exists");
    }
    components.push_back(instance);
    num_components = 1;
  }
  const double preprocess_seconds = preprocess_timer.Seconds();

  Timer solve_timer;
  std::vector<Solution> component_solutions(components.size());
  std::vector<Status> component_statuses(components.size());
  const obs::TraceContext trace_context = obs::CurrentTraceContext();
  ParallelFor(components.size(), options_.num_threads, [&](size_t i) {
    obs::ScopedSpanAdoption adopt(trace_context);
    component_statuses[i] =
        SolveComponent(components[i], options_, &component_solutions[i]);
  });
  for (size_t i = 0; i < components.size(); ++i) {
    MC3_RETURN_IF_ERROR(component_statuses[i]);
    solution.Merge(component_solutions[i]);
  }
  const double solve_seconds = solve_timer.Seconds();

  auto result =
      FinishSolve(instance, std::move(solution), options_.prune_unused,
                  options_.verify_solution);
  if (!result.ok()) return result.status();
  result->num_components = num_components;
  result->preprocess_seconds = preprocess_seconds;
  result->solve_seconds = solve_seconds;
  return result;
}

}  // namespace mc3
