#include "core/preprocess.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "core/instance_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"
#include "util/float_cmp.h"

namespace mc3 {
namespace {

/// Cumulative registry counters shared by both preprocessing workers; the
/// span stats cover the per-solve view, these cover the process lifetime.
void RecordPreprocessMetrics(const PreprocessStats& stats, double seconds) {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter& runs = registry.GetCounter("preprocess.runs");
  static obs::Counter& covered =
      registry.GetCounter("preprocess.queries_covered");
  static obs::Counter& removed =
      registry.GetCounter("preprocess.classifiers_removed");
  static obs::Counter& forced = registry.GetCounter("preprocess.forced");
  static obs::Histogram& latency =
      registry.GetHistogram("preprocess.seconds");
  runs.Add();
  covered.Add(stats.queries_covered);
  removed.Add(stats.classifiers_removed_step3 +
              stats.singletons_removed_step4);
  forced.Add(stats.singleton_queries_selected + stats.zero_weight_selected +
             stats.forced_selections_step3 + stats.selections_step4);
  latency.Record(seconds);
  // Per-step work counters for the perf-regression harness: each elimination
  // rule's deterministic hit count, gated exactly by mc3_benchdiff.
  static obs::Counter& step1 =
      registry.GetCounter("preprocess.step1.selected");
  static obs::Counter& step2 =
      registry.GetCounter("preprocess.step2.selected");
  static obs::Counter& step3_removed =
      registry.GetCounter("preprocess.step3.removed");
  static obs::Counter& step3_forced =
      registry.GetCounter("preprocess.step3.forced");
  static obs::Counter& step3_passes =
      registry.GetCounter("preprocess.step3.passes");
  static obs::Counter& step4_removed =
      registry.GetCounter("preprocess.step4.removed");
  static obs::Counter& step4_selected =
      registry.GetCounter("preprocess.step4.selected");
  step1.Add(stats.singleton_queries_selected);
  step2.Add(stats.zero_weight_selected);
  step3_removed.Add(stats.classifiers_removed_step3);
  step3_forced.Add(stats.forced_selections_step3);
  step3_passes.Add(stats.step3_passes);
  step4_removed.Add(stats.singletons_removed_step4);
  step4_selected.Add(stats.selections_step4);
}

enum class CState : uint8_t { kPresent, kSelected, kRemoved };

struct CEntry {
  Cost cost = kInfiniteCost;
  /// For kRemoved entries: the cost of the cheapest recorded decomposition,
  /// substituted whenever the classifier appears in a later decomposition.
  Cost replacement = kInfiniteCost;
  CState state = CState::kPresent;
  /// Step-3 pass stamp, so a classifier shared by several queries is
  /// examined once per pass.
  uint32_t stamp = 0;
};

using Table = std::unordered_map<PropertySet, CEntry, PropertySetHash>;

/// A priced classifier as seen from one query: its table entry, its key, and
/// its bitmask over the query's (sorted) property positions.
struct SubsetRef {
  CEntry* entry;
  const PropertySet* set;
  uint32_t mask;
};

class Worker {
 public:
  Worker(const Instance& instance, const PreprocessOptions& options)
      : input_(instance), options_(options) {
    queries_ = instance.queries();
    const size_t n = queries_.size();
    alive_.assign(n, true);
    covered_mask_.assign(n, 0);
    full_mask_.resize(n);
    refs_.resize(n);

    table_.reserve(instance.costs().size());
    // mc3-lint: unordered-ok(keyed inserts building the table)
    for (const auto& [classifier, cost] : instance.costs()) {
      table_.emplace(classifier,
                     CEntry{cost, kInfiniteCost, CState::kPresent, 0});
    }

    // Per-query cache of priced subsets (entry pointer + position mask);
    // all later passes run off this cache, with no hashing. Lookups go
    // through a reused probe key, so the cache build allocates nothing per
    // subset.
    std::vector<PropertyId> scratch;
    PropertySet probe;
    for (size_t qi = 0; qi < n; ++qi) {
      const auto& ids = queries_[qi].ids();
      const size_t len = ids.size();
      assert(len <= 25 && "query too long for mask-based preprocessing");
      full_mask_[qi] = (len >= 32) ? 0 : ((1u << len) - 1);
      const uint32_t limit = 1u << len;
      refs_[qi].reserve(len < 4 ? limit - 1 : 8);
      for (uint32_t mask = 1; mask < limit; ++mask) {
        scratch.clear();
        for (size_t i = 0; i < len; ++i) {
          if (mask & (1u << i)) scratch.push_back(ids[i]);
        }
        probe.AssignSortedForProbe(scratch.data(), scratch.size());
        const auto it = table_.find(probe);
        if (it != table_.end()) {
          refs_[qi].push_back(SubsetRef{&it->second, &it->first, mask});
        }
      }
      for (PropertyId p : ids) {
        if (p >= by_prop_.size()) by_prop_.resize(p + 1);
        by_prop_[p].push_back(qi);
      }
    }
  }

  Result<PreprocessResult> Run() {
    obs::ScopedSpan span("preprocess");
    MC3_RETURN_IF_ERROR(CheckFeasible());
    if (options_.step1_forced_singletons) {
      obs::ScopedSpan step("step1");
      StepOne();
      step.AddStat("singleton_queries",
                   static_cast<double>(
                       result_.stats.singleton_queries_selected));
      step.AddStat("zero_weight",
                   static_cast<double>(result_.stats.zero_weight_selected));
    }
    if (options_.step3_decompositions) {
      obs::ScopedSpan step("step3");
      MC3_RETURN_IF_ERROR(StepThree());
      step.AddStat("passes", result_.stats.step3_passes);
      step.AddStat("removed", static_cast<double>(
                                  result_.stats.classifiers_removed_step3));
      step.AddStat("forced", static_cast<double>(
                                 result_.stats.forced_selections_step3));
    }
    if (options_.step4_k2_singleton_prune) {
      obs::ScopedSpan step("step4");
      StepFour();
      step.AddStat("singletons_removed",
                   static_cast<double>(result_.stats.singletons_removed_step4));
      step.AddStat("selections",
                   static_cast<double>(result_.stats.selections_step4));
    }
    {
      obs::ScopedSpan step("partition");
      StepTwoPartition();
      step.AddStat("components",
                   static_cast<double>(result_.stats.num_components));
      step.AddStat("remaining_queries",
                   static_cast<double>(result_.stats.remaining_queries));
    }
    span.AddStat("queries_covered",
                 static_cast<double>(result_.stats.queries_covered));
    return std::move(result_);
  }

 private:
  /// Every query must be coverable by finite-weight classifiers.
  Status CheckFeasible() const {
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      uint32_t coverable = 0;
      for (const SubsetRef& ref : refs_[qi]) coverable |= ref.mask;
      if (coverable != full_mask_[qi]) {
        return Status::Infeasible(
            "query " + queries_[qi].ToString(input_.property_names()) +
            " cannot be covered by finite-weight classifiers");
      }
    }
    return Status::OK();
  }

  Cost Effective(const CEntry& entry) const {
    switch (entry.state) {
      case CState::kPresent:
        return entry.cost;
      case CState::kSelected:
        return 0;
      case CState::kRemoved:
        return entry.replacement;
    }
    return kInfiniteCost;
  }

  void Select(const SubsetRef& ref) {
    assert(ref.entry->state == CState::kPresent);
    ref.entry->state = CState::kSelected;
    result_.forced.Add(*ref.set);
    result_.forced_cost += ref.entry->cost;
    for (PropertyId p : *ref.set) touched_props_.push_back(p);
  }

  /// Recomputes coverage of the queries containing any recently-touched
  /// property; marks fully covered queries dead. Clears the touched list.
  void RefreshCoverage() {
    if (touched_props_.empty()) return;
    std::sort(touched_props_.begin(), touched_props_.end());
    touched_props_.erase(
        std::unique(touched_props_.begin(), touched_props_.end()),
        touched_props_.end());
    for (PropertyId p : touched_props_) {
      if (p >= by_prop_.size()) continue;
      for (size_t qi : by_prop_[p]) {
        if (!alive_[qi]) continue;
        uint32_t covered = 0;
        for (const SubsetRef& ref : refs_[qi]) {
          if (ref.entry->state == CState::kSelected) covered |= ref.mask;
        }
        covered_mask_[qi] = covered;
        if (covered == full_mask_[qi]) {
          alive_[qi] = false;
          ++result_.stats.queries_covered;
        }
      }
    }
    touched_props_.clear();
  }

  // ---- Step 1: singleton queries and zero-weight classifiers. ----
  void StepOne() {
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      if (queries_[qi].size() != 1) continue;
      // CheckFeasible guarantees the singleton classifier is priced.
      for (const SubsetRef& ref : refs_[qi]) {
        if (ref.entry->state == CState::kPresent) {
          Select(ref);
          ++result_.stats.singleton_queries_selected;
        }
      }
    }
    // Selection order reaches the forced Solution and the touched-property
    // list, so pick zero-cost classifiers in canonical order.
    std::vector<std::pair<const PropertySet*, CEntry*>> zero_cost;
    // mc3-lint: unordered-ok(candidates are sorted canonically below)
    for (auto& [classifier, entry] : table_) {
      if (entry.state == CState::kPresent && IsZeroCost(entry.cost)) {
        zero_cost.emplace_back(&classifier, &entry);
      }
    }
    std::sort(zero_cost.begin(), zero_cost.end(),
              [](const auto& a, const auto& b) { return *a.first < *b.first; });
    for (auto& [classifier, entry] : zero_cost) {
      entry->state = CState::kSelected;
      result_.forced.Add(*classifier);
      for (PropertyId p : *classifier) touched_props_.push_back(p);
      ++result_.stats.zero_weight_selected;
    }
    RefreshCoverage();
  }

  // ---- Step 3: remove classifiers with less costly decompositions. ----
  Status StepThree() {
    // First pass over every alive query; later passes only over queries
    // touched by forced selections (line 11 of Algorithm 1).
    std::vector<size_t> work;
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      if (alive_[qi]) work.push_back(qi);
    }
    while (!work.empty() &&
           result_.stats.step3_passes < options_.max_step3_passes) {
      ++result_.stats.step3_passes;
      ++pass_;
      Decompose(work);
      std::vector<PropertyId> selected_props;
      MC3_RETURN_IF_ERROR(ForcedSelections(work, &selected_props));
      RefreshCoverage();
      // Next pass: queries sharing a property with a new selection.
      work.clear();
      std::sort(selected_props.begin(), selected_props.end());
      selected_props.erase(
          std::unique(selected_props.begin(), selected_props.end()),
          selected_props.end());
      for (PropertyId p : selected_props) {
        for (size_t qi : by_prop_[p]) {
          if (alive_[qi]) work.push_back(qi);
        }
      }
      std::sort(work.begin(), work.end());
      work.erase(std::unique(work.begin(), work.end()), work.end());
    }
    return Status::OK();
  }

  /// Examines, by increasing length, every present classifier of the worked
  /// queries; removes those whose cheapest two-part decomposition does not
  /// cost more (Observation 3.3).
  void Decompose(const std::vector<size_t>& work) {
    size_t max_len = 0;
    for (size_t qi : work) max_len = std::max(max_len, queries_[qi].size());

    std::vector<Cost> eff_q;      // effective cost per mask, current query
    std::vector<Cost> eff_local;  // remapped to the classifier's own bits
    std::vector<Cost> min_superset;
    std::vector<int> bit_positions;
    for (size_t len = 2; len <= max_len; ++len) {
      for (size_t qi : work) {
        if (!alive_[qi] || queries_[qi].size() < len) continue;
        // Effective costs over this query's subset lattice.
        eff_q.assign(full_mask_[qi] + 1, kInfiniteCost);
        for (const SubsetRef& ref : refs_[qi]) {
          eff_q[ref.mask] = Effective(*ref.entry);
        }
        for (const SubsetRef& ref : refs_[qi]) {
          if (ref.entry->state != CState::kPresent) continue;
          if (static_cast<size_t>(std::popcount(ref.mask)) != len) continue;
          if (ref.entry->stamp == pass_) continue;
          ref.entry->stamp = pass_;

          // Remap the sublattice of this classifier to dense local bits.
          bit_positions.clear();
          for (int b = 0; b < 32; ++b) {
            if (ref.mask & (1u << b)) bit_positions.push_back(b);
          }
          const uint32_t local_full = (1u << len) - 1;
          eff_local.assign(local_full + 1, kInfiniteCost);
          for (uint32_t x = 1; x < local_full; ++x) {
            uint32_t global = 0;
            for (size_t i = 0; i < len; ++i) {
              if (x & (1u << i)) global |= 1u << bit_positions[i];
            }
            eff_local[x] = eff_q[global];
          }
          // min_superset[t] = min effective cost over proper subsets B of
          // the classifier with B superseteq t.
          min_superset = eff_local;
          for (size_t i = 0; i < len; ++i) {
            const uint32_t bit = 1u << i;
            for (uint32_t mask = 0; mask <= local_full; ++mask) {
              if (!(mask & bit)) {
                min_superset[mask] =
                    std::min(min_superset[mask], min_superset[mask | bit]);
              }
            }
          }
          Cost best = kInfiniteCost;
          for (uint32_t a = 1; a < local_full; ++a) {
            if (IsInfiniteCost(eff_local[a])) continue;
            best = std::min(best, eff_local[a] + min_superset[local_full ^ a]);
          }
          if (best <= ref.entry->cost) {
            ref.entry->state = CState::kRemoved;
            ref.entry->replacement = best;
            eff_q[ref.mask] = best;  // visible to longer classifiers here
            ++result_.stats.classifiers_removed_step3;
          }
        }
      }
    }
  }

  /// Line 10 (generalized per-property rule): if an uncovered property p of
  /// alive query q has exactly one present classifier containing it, that
  /// classifier is in every optimal solution over available classifiers.
  Status ForcedSelections(const std::vector<size_t>& work,
                          std::vector<PropertyId>* selected_props) {
    for (size_t qi : work) {
      if (!alive_[qi]) continue;
      const auto& ids = queries_[qi].ids();
      const size_t len = ids.size();
      uint32_t candidate_once = 0;   // positions seen in >= 1 classifier
      uint32_t candidate_multi = 0;  // positions seen in >= 2 classifiers
      std::array<const SubsetRef*, 32> unique_ref{};
      for (const SubsetRef& ref : refs_[qi]) {
        if (ref.entry->state == CState::kRemoved) continue;
        candidate_multi |= candidate_once & ref.mask;
        candidate_once |= ref.mask;
        uint32_t fresh = ref.mask & ~candidate_multi;
        while (fresh != 0) {
          const int bit = std::countr_zero(fresh);
          fresh &= fresh - 1;
          unique_ref[bit] = &ref;
        }
      }
      const uint32_t uncovered = full_mask_[qi] & ~covered_mask_[qi];
      if ((candidate_once & uncovered) != uncovered) {
        return Status::Infeasible(
            "property of query " +
            queries_[qi].ToString(input_.property_names()) +
            " lost all candidate classifiers");
      }
      uint32_t forced = uncovered & candidate_once & ~candidate_multi;
      while (forced != 0) {
        const int bit = std::countr_zero(forced);
        forced &= forced - 1;
        const SubsetRef* ref = unique_ref[bit];
        if (ref != nullptr && ref->entry->state == CState::kPresent) {
          Select(*ref);
          ++result_.stats.forced_selections_step3;
          for (PropertyId p : *ref->set) selected_props->push_back(p);
        }
      }
      (void)len;
    }
    return Status::OK();
  }

  // ---- Step 4: k = 2 singleton pruning. ----
  void StepFour() {
    size_t max_len = 0;
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      if (alive_[qi]) max_len = std::max(max_len, queries_[qi].size());
    }
    if (max_len > 2 || max_len == 0) return;

    std::vector<PropertyId> worklist;
    for (PropertyId p = 0; p < by_prop_.size(); ++p) {
      for (size_t qi : by_prop_[p]) {
        if (alive_[qi]) {
          worklist.push_back(p);
          break;
        }
      }
    }
    std::sort(worklist.begin(), worklist.end(), std::greater<PropertyId>());

    while (!worklist.empty()) {
      const PropertyId x = worklist.back();
      worklist.pop_back();
      const auto xit = table_.find(PropertySet::Of({x}));
      if (xit == table_.end() || xit->second.state != CState::kPresent) {
        continue;
      }
      // Sum the effective costs of the pair classifiers of all alive
      // queries containing x (the classifiers that intersect X).
      Cost sum = 0;
      std::vector<size_t> pair_queries;
      for (size_t qi : by_prop_[x]) {
        if (!alive_[qi]) continue;
        if (queries_[qi].size() != 2) continue;  // singletons died in step 1
        Cost pair_cost = kInfiniteCost;
        for (const SubsetRef& ref : refs_[qi]) {
          if (ref.mask == full_mask_[qi]) {
            pair_cost = Effective(*ref.entry);
            break;
          }
        }
        sum += pair_cost;
        pair_queries.push_back(qi);
        if (IsInfiniteCost(sum)) break;
      }
      if (pair_queries.empty() || sum > xit->second.cost) continue;
      // Select every pair, drop X, and recheck the other endpoints.
      for (size_t qi : pair_queries) {
        for (const SubsetRef& ref : refs_[qi]) {
          if (ref.mask != full_mask_[qi]) continue;
          if (ref.entry->state == CState::kPresent) {
            Select(ref);
            ++result_.stats.selections_step4;
          }
        }
        for (PropertyId y : queries_[qi]) {
          if (y != x) worklist.push_back(y);
        }
      }
      xit->second.state = CState::kRemoved;
      xit->second.replacement = sum;
      ++result_.stats.singletons_removed_step4;
      RefreshCoverage();
    }
  }

  // ---- Step 2: partition into independent sub-instances. ----
  void StepTwoPartition() {
    std::vector<size_t> alive_ids;
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      if (alive_[qi]) alive_ids.push_back(qi);
    }
    result_.stats.remaining_queries = alive_ids.size();
    if (alive_ids.empty()) {
      result_.stats.num_components = 0;
      return;
    }

    std::vector<size_t> component_of(alive_ids.size(), 0);
    size_t num_components = 1;
    if (options_.step2_partition) {
      ComponentPartition partition = PartitionQueries(queries_, alive_ids);
      num_components = partition.num_components;
      component_of = std::move(partition.component_of);
    }
    result_.stats.num_components = num_components;

    result_.components.assign(num_components, Instance{});
    for (auto& component : result_.components) {
      component.set_property_names(input_.property_names());
    }
    for (size_t idx = 0; idx < alive_ids.size(); ++idx) {
      Instance& component = result_.components[component_of[idx]];
      const size_t qi = alive_ids[idx];
      component.AddQuery(queries_[qi]);
      for (const SubsetRef& ref : refs_[qi]) {
        switch (ref.entry->state) {
          case CState::kPresent:
            component.SetCost(*ref.set, ref.entry->cost);
            break;
          case CState::kSelected:
            component.SetCost(*ref.set, 0);
            break;
          case CState::kRemoved:
            break;  // omitted (weight infinity)
        }
      }
    }
    for (const auto& component : result_.components) {
      result_.stats.remaining_classifiers += component.costs().size();
    }
  }

  const Instance& input_;
  const PreprocessOptions& options_;
  std::vector<PropertySet> queries_;
  std::vector<bool> alive_;
  std::vector<uint32_t> covered_mask_;
  std::vector<uint32_t> full_mask_;
  std::vector<std::vector<SubsetRef>> refs_;
  std::vector<std::vector<size_t>> by_prop_;  // dense by property id
  std::vector<PropertyId> touched_props_;
  Table table_;
  uint32_t pass_ = 0;
  PreprocessResult result_;
};

// ---------------------------------------------------------------------------
// Fast path for k <= 2 instances (the Algorithm 2 pipeline). Classifiers are
// only singletons and the per-query pairs, so the whole procedure runs on
// flat arrays: two hash probes per query to set up, none afterwards. This is
// what makes preprocessing pay off inside the exact k = 2 solver, whose
// max-flow phase is itself nearly linear (Figure 3c).
class K2Worker {
 public:
  K2Worker(const Instance& instance, const PreprocessOptions& options)
      : input_(instance), options_(options) {
    const size_t n = instance.NumQueries();
    queries_.reserve(n);
    // Dense remap of property ids.
    auto local = [&](PropertyId p) {
      const auto [it, inserted] =
          remap_.emplace(p, static_cast<int32_t>(props_.size()));
      if (inserted) {
        props_.push_back(PropState{
            p, instance.CostOf(PropertySet::Of({p})), CState::kPresent});
        prop_queries_.emplace_back();
      }
      return it->second;
    };
    for (size_t qi = 0; qi < n; ++qi) {
      const PropertySet& q = instance.queries()[qi];
      QueryState state;
      state.a = local(*q.begin());
      state.b = q.size() == 2 ? local(*(q.begin() + 1)) : state.a;
      state.pair_cost = q.size() == 2 ? instance.CostOf(q) : kInfiniteCost;
      queries_.push_back(state);
      prop_queries_[state.a].push_back(qi);
      if (state.b != state.a) prop_queries_[state.b].push_back(qi);
    }
  }

  Result<PreprocessResult> Run() {
    obs::ScopedSpan span("preprocess");
    MC3_RETURN_IF_ERROR(CheckFeasible());
    if (options_.step1_forced_singletons) {
      obs::ScopedSpan step("step1");
      StepOne();
      step.AddStat("singleton_queries",
                   static_cast<double>(
                       result_.stats.singleton_queries_selected));
      step.AddStat("zero_weight",
                   static_cast<double>(result_.stats.zero_weight_selected));
    }
    if (options_.step3_decompositions) {
      obs::ScopedSpan step("step3");
      StepThree();
      step.AddStat("passes", result_.stats.step3_passes);
      step.AddStat("removed", static_cast<double>(
                                  result_.stats.classifiers_removed_step3));
      step.AddStat("forced", static_cast<double>(
                                 result_.stats.forced_selections_step3));
    }
    if (options_.step4_k2_singleton_prune) {
      obs::ScopedSpan step("step4");
      StepFour();
      step.AddStat("singletons_removed",
                   static_cast<double>(result_.stats.singletons_removed_step4));
      step.AddStat("selections",
                   static_cast<double>(result_.stats.selections_step4));
    }
    {
      obs::ScopedSpan step("partition");
      StepTwoPartition();
      step.AddStat("components",
                   static_cast<double>(result_.stats.num_components));
      step.AddStat("remaining_queries",
                   static_cast<double>(result_.stats.remaining_queries));
    }
    span.AddStat("queries_covered",
                 static_cast<double>(result_.stats.queries_covered));
    return std::move(result_);
  }

 private:
  struct PropState {
    PropertyId id;
    Cost cost;  // singleton classifier cost (infinite when unpriced)
    CState state;
  };
  struct QueryState {
    int32_t a, b;  // local property indices; a == b for singleton queries
    Cost pair_cost;
    CState pair_state = CState::kPresent;
    bool alive = true;
  };

  Cost EffSingle(int32_t p) const {
    const PropState& prop = props_[p];
    if (prop.state == CState::kSelected) return 0;
    if (prop.state == CState::kRemoved) return kInfiniteCost;
    return prop.cost;
  }
  Cost EffPair(const QueryState& q) const {
    if (q.pair_state == CState::kSelected) return 0;
    if (q.pair_state == CState::kRemoved) return kInfiniteCost;
    return q.pair_cost;
  }

  Status CheckFeasible() const {
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      const QueryState& q = queries_[qi];
      const bool singles =
          !IsInfiniteCost(props_[q.a].cost) &&
          (q.a == q.b || !IsInfiniteCost(props_[q.b].cost));
      if (!singles && IsInfiniteCost(q.pair_cost)) {
        return Status::Infeasible(
            "query " +
            input_.queries()[qi].ToString(input_.property_names()) +
            " cannot be covered by finite-weight classifiers");
      }
    }
    return Status::OK();
  }

  void SelectSingle(int32_t p) {
    PropState& prop = props_[p];
    assert(prop.state == CState::kPresent);
    prop.state = CState::kSelected;
    result_.forced.Add(PropertySet::Of({prop.id}));
    result_.forced_cost += prop.cost;
    RefreshAround(p);
  }

  void SelectPair(size_t qi) {
    QueryState& q = queries_[qi];
    assert(q.pair_state == CState::kPresent);
    q.pair_state = CState::kSelected;
    result_.forced.Add(input_.queries()[qi]);
    result_.forced_cost += q.pair_cost;
    if (q.alive) {
      q.alive = false;
      ++result_.stats.queries_covered;
    }
  }

  /// Re-checks coverage of queries touching local property p.
  void RefreshAround(int32_t p) {
    for (size_t qi : prop_queries_[p]) {
      QueryState& q = queries_[qi];
      if (!q.alive) continue;
      const bool covered =
          q.pair_state == CState::kSelected ||
          (props_[q.a].state == CState::kSelected &&
           props_[q.b].state == CState::kSelected);
      if (covered) {
        q.alive = false;
        ++result_.stats.queries_covered;
      }
    }
  }

  // Step 1: singleton queries force their classifier; zero weights selected.
  void StepOne() {
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      const QueryState& q = queries_[qi];
      if (q.a == q.b && props_[q.a].state == CState::kPresent) {
        SelectSingle(q.a);
        ++result_.stats.singleton_queries_selected;
      }
    }
    for (int32_t p = 0; p < static_cast<int32_t>(props_.size()); ++p) {
      if (props_[p].state == CState::kPresent && IsZeroCost(props_[p].cost)) {
        SelectSingle(p);
        ++result_.stats.zero_weight_selected;
      }
    }
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      if (queries_[qi].alive && IsZeroCost(queries_[qi].pair_cost) &&
          queries_[qi].pair_state == CState::kPresent) {
        SelectPair(qi);
        ++result_.stats.zero_weight_selected;
      }
    }
  }

  // Step 3 for k = 2: a pair's only decomposition is its two singletons;
  // remove dominated pairs, then force unique candidates to a fixpoint.
  void StepThree() {
    ++result_.stats.step3_passes;
    std::vector<size_t> work(queries_.size());
    std::iota(work.begin(), work.end(), size_t{0});
    while (!work.empty()) {
      std::vector<size_t> next;
      for (size_t qi : work) {
        QueryState& q = queries_[qi];
        if (!q.alive || q.a == q.b) continue;
        if (q.pair_state == CState::kPresent &&
            EffSingle(q.a) + EffSingle(q.b) <= q.pair_cost) {
          q.pair_state = CState::kRemoved;
          ++result_.stats.classifiers_removed_step3;
        }
        // Forcing: when one cover side is gone, the other is mandatory.
        const bool pair_gone = IsInfiniteCost(EffPair(q));
        if (pair_gone) {
          for (int32_t p : {q.a, q.b}) {
            if (props_[p].state == CState::kPresent) {
              SelectSingle(p);
              ++result_.stats.forced_selections_step3;
              for (size_t other : prop_queries_[p]) next.push_back(other);
            }
          }
        } else if (IsInfiniteCost(props_[q.a].cost) ||
                   IsInfiniteCost(props_[q.b].cost)) {
          if (q.pair_state == CState::kPresent) {
            SelectPair(qi);
            ++result_.stats.forced_selections_step3;
          }
        }
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      work = std::move(next);
      if (!work.empty()) ++result_.stats.step3_passes;
    }
  }

  // Step 4: Observation 3.4 with the chain reaction of line 13.
  void StepFour() {
    std::vector<int32_t> worklist(props_.size());
    std::iota(worklist.begin(), worklist.end(), 0);
    while (!worklist.empty()) {
      const int32_t x = worklist.back();
      worklist.pop_back();
      if (props_[x].state != CState::kPresent) continue;
      Cost sum = 0;
      bool any = false;
      for (size_t qi : prop_queries_[x]) {
        const QueryState& q = queries_[qi];
        if (!q.alive || q.a == q.b) continue;
        sum += EffPair(q);
        any = true;
        if (IsInfiniteCost(sum)) break;
      }
      if (!any || sum > props_[x].cost) continue;
      for (size_t qi : prop_queries_[x]) {
        QueryState& q = queries_[qi];
        if (!q.alive || q.a == q.b) continue;
        const int32_t other = q.a == x ? q.b : q.a;
        if (q.pair_state == CState::kPresent) {
          SelectPair(qi);
          ++result_.stats.selections_step4;
        }
        worklist.push_back(other);
      }
      props_[x].state = CState::kRemoved;
      ++result_.stats.singletons_removed_step4;
    }
  }

  void StepTwoPartition() {
    std::vector<size_t> alive_ids;
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      if (queries_[qi].alive) alive_ids.push_back(qi);
    }
    result_.stats.remaining_queries = alive_ids.size();
    if (alive_ids.empty()) {
      result_.stats.num_components = 0;
      return;
    }
    std::vector<size_t> component_of(alive_ids.size(), 0);
    size_t num_components = 1;
    if (options_.step2_partition) {
      ComponentPartition partition =
          PartitionQueries(input_.queries(), alive_ids);
      num_components = partition.num_components;
      component_of = std::move(partition.component_of);
    }
    result_.stats.num_components = num_components;
    result_.components.assign(num_components, Instance{});
    for (auto& component : result_.components) {
      component.set_property_names(input_.property_names());
    }
    auto emit_single = [&](Instance* component, int32_t p) {
      const PropState& prop = props_[p];
      switch (prop.state) {
        case CState::kPresent:
          if (!IsInfiniteCost(prop.cost)) {
            component->SetCost(PropertySet::Of({prop.id}), prop.cost);
          }
          break;
        case CState::kSelected:
          component->SetCost(PropertySet::Of({prop.id}), 0);
          break;
        case CState::kRemoved:
          break;
      }
    };
    for (size_t idx = 0; idx < alive_ids.size(); ++idx) {
      Instance& component = result_.components[component_of[idx]];
      const size_t qi = alive_ids[idx];
      const QueryState& q = queries_[qi];
      component.AddQuery(input_.queries()[qi]);
      emit_single(&component, q.a);
      if (q.b != q.a) emit_single(&component, q.b);
      switch (q.pair_state) {
        case CState::kPresent:
          if (!IsInfiniteCost(q.pair_cost)) {
            component.SetCost(input_.queries()[qi], q.pair_cost);
          }
          break;
        case CState::kSelected:
          component.SetCost(input_.queries()[qi], 0);
          break;
        case CState::kRemoved:
          break;
      }
    }
    for (const auto& component : result_.components) {
      result_.stats.remaining_classifiers += component.costs().size();
    }
  }

  const Instance& input_;
  const PreprocessOptions& options_;
  std::vector<QueryState> queries_;
  std::vector<PropState> props_;
  std::vector<std::vector<size_t>> prop_queries_;  // by local property
  std::unordered_map<PropertyId, int32_t> remap_;
  PreprocessResult result_;
};

}  // namespace

Result<PreprocessResult> Preprocess(const Instance& instance,
                                    const PreprocessOptions& options) {
  Timer timer;
  Result<PreprocessResult> result =
      (instance.MaxQueryLength() <= 2 && !options.force_generic_path)
          ? K2Worker(instance, options).Run()
          : Worker(instance, options).Run();
  if (result.ok()) RecordPreprocessMetrics(result->stats, timer.Seconds());
  return result;
}

}  // namespace mc3
