#include "core/baselines.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "core/cover_dp.h"
#include "flow/hopcroft_karp.h"
#include "util/float_cmp.h"

namespace mc3 {

Result<SolveResult> PropertyOrientedSolver::Solve(
    const Instance& instance) const {
  Solution solution;
  std::unordered_set<PropertyId> seen;
  for (const PropertySet& q : instance.queries()) {
    for (PropertyId p : q) {
      if (seen.insert(p).second) solution.Add(PropertySet::Of({p}));
    }
  }
  // No pruning: this baseline is defined as "all singletons".
  return FinishSolve(instance, std::move(solution), /*prune_unused=*/false);
}

Result<SolveResult> QueryOrientedSolver::Solve(
    const Instance& instance) const {
  Solution solution;
  for (const PropertySet& q : instance.queries()) solution.Add(q);
  return FinishSolve(instance, std::move(solution), /*prune_unused=*/false);
}

Result<SolveResult> MixedSolver::Solve(const Instance& instance) const {
  if (instance.MaxQueryLength() > 2) {
    return Status::InvalidArgument(
        "Mixed baseline handles queries of length <= 2 only");
  }
  Solution solution;
  // Forced choices first; the remaining free edges form the bipartite graph.
  flow::BipartiteGraph graph;
  std::unordered_map<PropertyId, int32_t> prop_node;
  std::vector<PropertyId> node_prop;
  std::vector<const PropertySet*> pair_queries;
  auto prop_of = [&](PropertyId p) {
    const auto [it, inserted] =
        prop_node.emplace(p, static_cast<int32_t>(node_prop.size()));
    if (inserted) node_prop.push_back(p);
    return it->second;
  };

  // Pass 1: singleton queries force their classifier; those singletons then
  // cover their incident (X, XY) edges for free in pass 2 (the edges are
  // simply not added), keeping the reduction exact under uniform costs.
  std::unordered_set<PropertyId> forced_singletons;
  for (const PropertySet& q : instance.queries()) {
    if (q.size() != 1) continue;
    if (IsInfiniteCost(instance.CostOf(q))) {
      return Status::Infeasible("singleton query without its classifier");
    }
    solution.Add(q);
    forced_singletons.insert(*q.begin());
  }
  for (const PropertySet& q : instance.queries()) {
    if (q.size() == 1) continue;
    const bool pair_priced = !IsInfiniteCost(instance.CostOf(q));
    std::vector<PropertyId> open;  // properties not already resolved
    bool open_priced = true;
    for (PropertyId p : q) {
      if (forced_singletons.count(p) > 0) continue;
      open.push_back(p);
      if (IsInfiniteCost(instance.CostOf(PropertySet::Of({p})))) {
        open_priced = false;
      }
    }
    if (open.empty()) continue;  // covered by forced singletons
    if (!pair_priced && !open_priced) {
      return Status::Infeasible("query " +
                                q.ToString(instance.property_names()) +
                                " has no finite-cost cover");
    }
    if (!pair_priced) {
      for (PropertyId p : open) solution.Add(PropertySet::Of({p}));
    } else if (!open_priced) {
      solution.Add(q);
    } else {
      const auto r = static_cast<int32_t>(pair_queries.size());
      pair_queries.push_back(&q);
      for (PropertyId p : open) graph.edges.emplace_back(prop_of(p), r);
    }
  }
  graph.num_left = static_cast<int32_t>(node_prop.size());
  graph.num_right = static_cast<int32_t>(pair_queries.size());

  const flow::UnweightedVertexCover cover = flow::MinVertexCoverKoenig(graph);
  for (int32_t l = 0; l < graph.num_left; ++l) {
    if (cover.left_in_cover[l]) solution.Add(PropertySet::Of({node_prop[l]}));
  }
  for (int32_t r = 0; r < graph.num_right; ++r) {
    if (cover.right_in_cover[r]) solution.Add(*pair_queries[r]);
  }
  return FinishSolve(instance, std::move(solution), /*prune_unused=*/false);
}

Result<SolveResult> LocalGreedySolver::Solve(const Instance& instance) const {
  if (!instance.IsFeasible()) {
    return Status::Infeasible("no finite-cost solution exists");
  }
  const size_t n = instance.NumQueries();
  Solution solution;
  std::unordered_set<PropertySet, PropertySetHash> selected;
  const auto effective = [&](const PropertySet& c) -> Cost {
    return selected.count(c) > 0 ? 0 : instance.CostOf(c);
  };

  // property -> queries containing it, to recompute only affected covers.
  std::unordered_map<PropertyId, std::vector<size_t>> by_prop;
  for (size_t i = 0; i < n; ++i) {
    for (PropertyId p : instance.queries()[i]) by_prop[p].push_back(i);
  }

  std::vector<QueryCover> covers(n);
  std::vector<bool> covered(n, false);
  for (size_t i = 0; i < n; ++i) {
    // Feasibility was checked, so a cover exists.
    covers[i] = *MinCostQueryCover(instance.queries()[i], effective);
  }

  size_t remaining = n;
  while (remaining > 0) {
    // The uncovered query with the least costly cover.
    size_t best = n;
    for (size_t i = 0; i < n; ++i) {
      if (!covered[i] && (best == n || covers[i].cost < covers[best].cost)) {
        best = i;
      }
    }
    covered[best] = true;
    --remaining;
    std::unordered_set<PropertyId> touched;
    for (const PropertySet& c : covers[best].classifiers) {
      if (selected.insert(c).second) {
        solution.Add(c);
        for (PropertyId p : c) touched.insert(p);
      }
    }
    if (touched.empty()) continue;  // cover was already free
    // Recompute covers of uncovered queries sharing a touched property, and
    // retire queries that are now fully covered for free.
    std::unordered_set<size_t> affected;
    // mc3-lint: unordered-ok(keyed inserts into a set; order-independent)
    for (PropertyId p : touched) {
      for (size_t qi : by_prop[p]) {
        if (!covered[qi]) affected.insert(qi);
      }
    }
    // mc3-lint: unordered-ok(per-query recompute is keyed and idempotent)
    for (size_t qi : affected) {
      covers[qi] = *MinCostQueryCover(instance.queries()[qi], effective);
    }
  }
  return FinishSolve(instance, std::move(solution), /*prune_unused=*/false);
}

}  // namespace mc3
