// Multi-valued classifier support (paper Section 5.3).
//
// Two regimes are covered:
//  1. Only multi-valued classifiers: properties belonging to the same
//     attribute (e.g. "color=red", "color=blue") are merged into a single
//     attribute-property, producing another MC3 instance over attributes —
//     MergeToAttributes below.
//  2. Multi-valued classifiers alongside binary ones: the WSC reduction is
//     extended with one extra set per multi-valued classifier covering every
//     occurrence of its value-properties, in any query — SolveWithMultiValued
//     below.
#pragma once

#include <string>
#include <vector>

#include "core/instance.h"
#include "core/solution.h"
#include "core/solver.h"
#include "util/status.h"

namespace mc3 {

/// Attribute ids (dense, like property ids).
using AttributeId = uint32_t;

/// Regime 1: builds the attribute-level MC3 instance. `property_attribute`
/// maps every property id to its attribute id; queries are rewritten over
/// attributes and deduplicated. `attribute_costs` prices the attribute-level
/// classifiers (externally estimated, as in the paper); it becomes the new
/// instance's cost table. Fails when a property id in some query has no
/// attribute mapping (property_attribute too short).
Result<Instance> MergeToAttributes(
    const Instance& instance,
    const std::vector<AttributeId>& property_attribute,
    const CostMap& attribute_costs);

/// A multi-valued classifier: resolves, for every item, which of
/// `value_properties` hold (e.g. a "team" classifier resolves the
/// "team=Juventus" and "team=Chelsea" properties at once).
struct MultiValuedClassifier {
  std::string name;
  PropertySet value_properties;
  Cost cost = 0;
};

/// Regime 2 result: the binary classifiers plus the multi-valued classifiers
/// chosen (indices into the input vector).
struct HybridSolveResult {
  Solution binary;
  std::vector<size_t> multi_valued;
  Cost cost = 0;
};

/// Section 5.3's pruning rule: a multi-valued classifier "makes sense only
/// when its cost is less than the sum of costs of the corresponding binary
/// classifiers". Returns the indices of classifiers that survive (cost
/// strictly below the summed singleton costs of their value-properties that
/// occur in some query; properties with unpriced singletons keep the
/// multi-valued option alive).
std::vector<size_t> PruneMultiValued(
    const Instance& instance,
    const std::vector<MultiValuedClassifier>& multi_valued);

/// Solves `instance` with binary classifiers and the given multi-valued
/// classifiers available, via the extended WSC reduction (each multi-valued
/// classifier covers every occurrence of its value-properties). Prunable
/// multi-valued classifiers (see PruneMultiValued) are skipped up front.
/// Uses greedy plus primal-dual, keeping the cheaper cover, as in
/// Algorithm 3.
Result<HybridSolveResult> SolveWithMultiValued(
    const Instance& instance,
    const std::vector<MultiValuedClassifier>& multi_valued);

}  // namespace mc3

