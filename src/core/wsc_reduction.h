// The Section 5 reduction from MC3 to Weighted Set Cover.
//
// For every query q and property p in q an element p_q is created (a
// distinct element per occurrence). Every finite-cost classifier S becomes a
// set containing exactly the elements p_q with p in S and S subseteq q,
// priced at W(S). Covers of the WSC instance correspond one-to-one,
// cost-preservingly, to MC3 solutions (Figure 2 of the paper).
#pragma once

#include <vector>

#include "core/instance.h"
#include "core/solution.h"
#include "setcover/instance.h"

namespace mc3 {

/// The reduced instance plus the back-mapping from sets to classifiers.
struct WscReduction {
  setcover::WscInstance wsc;
  /// set_to_classifier[i] is the classifier represented by wsc.sets[i].
  std::vector<PropertySet> set_to_classifier;
  /// element_offset[qi] is the element id of the first property of query qi
  /// (elements of a query are contiguous, in the query's sorted id order).
  std::vector<setcover::ElementId> element_offset;
};

/// Builds the reduction. Only finite-cost classifiers become sets; sets are
/// ordered canonically (by length, then lexicographically) for deterministic
/// downstream behavior.
WscReduction ReduceToWsc(const Instance& instance);

/// Maps a WSC solution back to the corresponding MC3 classifier selection.
Solution WscSolutionToMc3(const WscReduction& reduction,
                          const setcover::WscSolution& wsc_solution);

}  // namespace mc3

