#include "core/stats.h"

#include <algorithm>
#include <cmath>

#include "util/table.h"

namespace mc3 {

InstanceStats ComputeStats(const Instance& instance) {
  InstanceStats stats;
  stats.num_queries = instance.NumQueries();
  stats.num_properties = instance.NumProperties();
  stats.max_query_length = instance.MaxQueryLength();
  stats.length_histogram.assign(stats.max_query_length + 1, 0);
  size_t short_queries = 0;
  for (const PropertySet& q : instance.queries()) {
    ++stats.length_histogram[q.size()];
    if (q.size() <= 2) ++short_queries;
  }
  stats.fraction_short =
      stats.num_queries == 0
          ? 0
          : static_cast<double>(short_queries) / stats.num_queries;

  bool first = true;
  // mc3-lint: unordered-ok(count/min/max aggregation is order-independent)
  for (const auto& [classifier, cost] : instance.costs()) {
    if (!std::isfinite(cost)) continue;
    ++stats.num_classifiers;
    if (first) {
      stats.min_cost = stats.max_cost = cost;
      first = false;
    } else {
      stats.min_cost = std::min(stats.min_cost, cost);
      stats.max_cost = std::max(stats.max_cost, cost);
    }
  }
  stats.incidence = instance.Incidence();
  stats.feasible = instance.IsFeasible();
  return stats;
}

std::string StatsRow(const std::string& name, const InstanceStats& stats) {
  return name + ", " + std::to_string(stats.num_queries) + " queries, max cost " +
         TablePrinter::Num(stats.max_cost, 0) + ", max length " +
         std::to_string(stats.max_query_length);
}

}  // namespace mc3
