// Umbrella header: the public API of the MC3 library.
//
// MC3 — Minimization of Classifier Construction Cost for Search Queries
// (Gershtein, Milo, Morami, Novgorodov; SIGMOD 2020).
//
// Quick tour:
//   Instance / InstanceBuilder  — the problem input <Q, W>
//   Preprocess                  — Algorithm 1 (pruning, optimum-preserving)
//   K2ExactSolver               — Algorithm 2, exact for queries of length <= 2
//   GeneralSolver               — Algorithm 3, approximation for any length
//   ShortFirstSolver            — exact-on-short + approximate-on-rest
//   Property/Query/Mixed/LocalGreedy solvers — the paper's baselines
//   ExactSolver                 — branch-and-bound oracle for small instances
//   VerifyCoverage              — the coverage semantics, as a checker
#pragma once

#include "core/baselines.h"           // IWYU pragma: export
#include "core/cover_dp.h"            // IWYU pragma: export
#include "core/exact_solver.h"        // IWYU pragma: export
#include "core/general_solver.h"      // IWYU pragma: export
#include "core/hardness.h"            // IWYU pragma: export
#include "core/instance.h"            // IWYU pragma: export
#include "core/instance_util.h"       // IWYU pragma: export
#include "core/k2_solver.h"           // IWYU pragma: export
#include "core/multi_valued.h"        // IWYU pragma: export
#include "core/partial_cover.h"       // IWYU pragma: export
#include "core/preprocess.h"          // IWYU pragma: export
#include "core/property_set.h"        // IWYU pragma: export
#include "core/shared_labeling.h"     // IWYU pragma: export
#include "core/short_first_solver.h"  // IWYU pragma: export
#include "core/solution.h"            // IWYU pragma: export
#include "core/solver.h"              // IWYU pragma: export
#include "core/stats.h"               // IWYU pragma: export
#include "core/wsc_reduction.h"       // IWYU pragma: export

