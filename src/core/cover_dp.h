// Exact minimum-cost cover of a single query by dynamic programming over
// property-subset masks. Used by the Local-Greedy baseline (its per-query
// "least costly cover" step), by the exact branch-and-bound oracle, and by
// solution post-processing. Cost is O(4^|q|); query lengths are <= ~10 in
// every workload the paper considers.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/instance.h"

namespace mc3 {

/// A cover of one query: classifiers whose union equals the query.
struct QueryCover {
  Cost cost = 0;
  std::vector<PropertySet> classifiers;
};

/// Returns a cheapest cover of `query` using classifiers priced by
/// `cost_fn` (kInfiniteCost = unavailable), or nullopt when no finite-cost
/// cover exists. `cost_fn` is consulted once per non-empty subset of the
/// query.
std::optional<QueryCover> MinCostQueryCover(
    const PropertySet& query,
    const std::function<Cost(const PropertySet&)>& cost_fn);

}  // namespace mc3

