#include "core/solution.h"

#include <algorithm>
#include "util/float_cmp.h"

namespace mc3 {

bool Solution::Add(const PropertySet& classifier) {
  if (!lookup_.insert(classifier).second) return false;
  classifiers_.push_back(classifier);
  return true;
}

void Solution::Merge(const Solution& other) {
  for (const auto& c : other.classifiers_) Add(c);
}

Cost Solution::TotalCost(const Instance& instance) const {
  Cost total = 0;
  for (const auto& c : classifiers_) total += instance.CostOf(c);
  return total;
}

std::vector<PropertySet> Solution::Sorted() const {
  std::vector<PropertySet> sorted = classifiers_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::string Solution::ToString(const Instance& instance) const {
  std::string out = "[";
  bool first = true;
  for (const auto& c : Sorted()) {
    if (!first) out += ", ";
    first = false;
    out += c.ToString(instance.property_names());
  }
  out += "]";
  return out;
}

CoverageReport VerifyCoverage(const Instance& instance,
                              const Solution& solution) {
  CoverageReport report;
  report.covers_all = true;
  report.witnesses.resize(instance.NumQueries());
  for (size_t i = 0; i < instance.NumQueries(); ++i) {
    const PropertySet& q = instance.queries()[i];
    PropertySet covered;
    ForEachNonEmptySubset(q, [&](const PropertySet& sub) {
      if (solution.Contains(sub)) {
        report.witnesses[i].push_back(sub);
        covered = covered.UnionWith(sub);
      }
    });
    if (!(covered == q)) {
      report.covers_all = false;
      report.uncovered_queries.push_back(i);
    }
  }
  return report;
}

bool Covers(const Instance& instance, const Solution& solution) {
  PropertySet probe;
  std::vector<PropertyId> scratch;
  for (const PropertySet& q : instance.queries()) {
    const auto& ids = q.ids();
    const size_t len = ids.size();
    if (len > 25) return false;
    const uint32_t full = (1u << len) - 1;
    uint32_t covered = 0;
    for (uint32_t mask = 1; mask <= full && covered != full; ++mask) {
      if ((mask | covered) == covered) continue;
      scratch.clear();
      for (size_t i = 0; i < len; ++i) {
        if (mask & (1u << i)) scratch.push_back(ids[i]);
      }
      probe.AssignSortedForProbe(scratch.data(), scratch.size());
      if (solution.Contains(probe)) covered |= mask;
    }
    if (covered != full) return false;
  }
  return true;
}

Solution PruneUnusedClassifiers(const Instance& instance,
                                const Solution& solution) {
  // For each query, a cheapest witness cover among the selected classifiers
  // via DP over property-subset masks (k <= ~10 in every workload).
  std::unordered_set<PropertySet, PropertySetHash> used;
  for (const auto& q : instance.queries()) {
    const auto& ids = q.ids();
    const size_t k = ids.size();
    // Selected classifiers that are subsets of q, as bitmasks over q.
    std::vector<uint32_t> cand_masks;
    std::vector<PropertySet> cand_sets;
    std::vector<Cost> cand_costs;
    ForEachNonEmptySubset(q, [&](const PropertySet& sub) {
      if (solution.Contains(sub)) {
        uint32_t mask = 0;
        for (size_t i = 0; i < k; ++i) {
          if (sub.Contains(ids[i])) mask |= 1u << i;
        }
        cand_masks.push_back(mask);
        cand_sets.push_back(sub);
        cand_costs.push_back(instance.CostOf(sub));
      }
    });
    const uint32_t full = (1u << k) - 1;
    std::vector<Cost> dp(full + 1, kInfiniteCost);
    std::vector<int32_t> parent(full + 1, -1);
    std::vector<uint32_t> parent_mask(full + 1, 0);
    dp[0] = 0;
    for (uint32_t mask = 0; mask <= full; ++mask) {
      if (IsInfiniteCost(dp[mask])) continue;
      for (size_t c = 0; c < cand_masks.size(); ++c) {
        const uint32_t next = mask | cand_masks[c];
        if (next == mask) continue;
        const Cost cost = dp[mask] + cand_costs[c];
        if (cost < dp[next]) {
          dp[next] = cost;
          parent[next] = static_cast<int32_t>(c);
          parent_mask[next] = mask;
        }
      }
    }
    if (IsInfiniteCost(dp[full])) {
      // Solution does not cover q (or only via unpriced classifiers);
      // pruning is not safe — return the input untouched.
      return solution;
    }
    for (uint32_t mask = full; mask != 0;) {
      used.insert(cand_sets[parent[mask]]);
      mask = parent_mask[mask];
    }
  }
  Solution pruned;
  for (const auto& c : solution.classifiers()) {
    if (used.count(c) > 0) pruned.Add(c);
  }
  return pruned;
}

}  // namespace mc3
