// The Short-First heuristic ("SF" in the paper's experiments, introduced at
// the end of Section 4): first cover the queries of length at most two
// optimally with Algorithm 2, then run Algorithm 3 on the residual problem
// (the longer queries), with the already-selected classifiers available at
// cost zero. The paper reports this to be the best strategy on workloads
// where short queries dominate (e.g. the fashion category, 96% short).
#pragma once

#include "core/solver.h"

namespace mc3 {

/// Combined solver: exact on short queries, approximate on the rest.
class ShortFirstSolver : public Solver {
 public:
  explicit ShortFirstSolver(SolverOptions options = {})
      : options_(std::move(options)) {}

  std::string Name() const override { return "sf"; }
  Result<SolveResult> Solve(const Instance& instance) const override;

 private:
  SolverOptions options_;
};

}  // namespace mc3

