// A solution to an MC3 instance: the set of classifiers to train.
//
// Coverage semantics (paper Section 2.1): query q is covered by classifier
// set S iff there is T subseteq S with union(T) = q. Every member of such a
// T is necessarily a subset of q, so the check reduces to: the union of all
// selected classifiers that are subsets of q equals q. CoverageReport below
// is the single source of truth for this check across solvers, tests and
// benches.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "core/instance.h"

namespace mc3 {

/// Set of distinct classifiers forming a solution.
class Solution {
 public:
  /// Adds `classifier` if not already present; returns true if inserted.
  bool Add(const PropertySet& classifier);

  /// Adds every classifier of `other` not already present.
  void Merge(const Solution& other);

  bool Contains(const PropertySet& classifier) const {
    return lookup_.count(classifier) > 0;
  }
  const std::vector<PropertySet>& classifiers() const { return classifiers_; }
  size_t size() const { return classifiers_.size(); }
  bool empty() const { return classifiers_.empty(); }

  /// Total construction cost under `instance`'s weight function. Infinite if
  /// any selected classifier is unpriced.
  Cost TotalCost(const Instance& instance) const;

  /// Classifiers sorted canonically (for deterministic output).
  std::vector<PropertySet> Sorted() const;

  /// Renders classifiers like "[A&B, C]" using the instance's name table.
  std::string ToString(const Instance& instance) const;

 private:
  std::vector<PropertySet> classifiers_;
  std::unordered_set<PropertySet, PropertySetHash> lookup_;
};

/// Result of verifying a solution against an instance.
struct CoverageReport {
  bool covers_all = false;
  /// Indices of queries not covered.
  std::vector<size_t> uncovered_queries;
  /// For each query, the selected classifiers that are subsets of it (its
  /// cover witness when covered). Parallel to instance.queries().
  std::vector<std::vector<PropertySet>> witnesses;
};

/// Verifies coverage of every query and produces per-query witnesses.
CoverageReport VerifyCoverage(const Instance& instance,
                              const Solution& solution);

/// True iff `solution` covers every query of `instance`.
bool Covers(const Instance& instance, const Solution& solution);

/// Drops classifiers that appear in no query's (greedy) cover witness:
/// recomputes, per query, a minimal-cost witness among the selected
/// classifiers and keeps only classifiers used by some query. Never breaks
/// coverage and never increases cost (it can only remove classifiers).
Solution PruneUnusedClassifiers(const Instance& instance,
                                const Solution& solution);

}  // namespace mc3

