#include "core/shared_labeling.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/cover_dp.h"
#include "util/float_cmp.h"

namespace mc3 {

Cost SharedLabelingModel::StandaloneCost(const PropertySet& classifier) const {
  const auto it = base_costs.find(classifier);
  if (it == base_costs.end()) return kInfiniteCost;
  Cost total = it->second;
  for (PropertyId p : classifier) {
    const auto lit = label_costs.find(p);
    if (lit != label_costs.end()) total += lit->second;
  }
  return total;
}

Cost SharedLabelingModel::SetCost(const Solution& solution) const {
  Cost total = 0;
  std::unordered_set<PropertyId> labeled;
  for (const PropertySet& c : solution.classifiers()) {
    const auto it = base_costs.find(c);
    if (it == base_costs.end()) return kInfiniteCost;
    total += it->second;
    for (PropertyId p : c) {
      if (labeled.insert(p).second) {
        const auto lit = label_costs.find(p);
        if (lit != label_costs.end()) total += lit->second;
      }
    }
  }
  return total;
}

Instance FlattenToIndependentCosts(const Instance& instance,
                                   const SharedLabelingModel& model) {
  Instance flat;
  flat.set_property_names(instance.property_names());
  for (const PropertySet& q : instance.queries()) flat.AddQuery(q);
  for (const auto& [classifier, base] : SortedCostEntries(model.base_costs)) {
    flat.SetCost(classifier, model.StandaloneCost(classifier));
  }
  return flat;
}

namespace {

Status ValidateModel(const SharedLabelingModel& model) {
  // mc3-lint: unordered-ok(every violating entry yields the identical error)
  for (const auto& [classifier, base] : model.base_costs) {
    if (base < 0 || std::isnan(base)) {
      return Status::InvalidArgument("negative base cost");
    }
  }
  // mc3-lint: unordered-ok(every violating entry yields the identical error)
  for (const auto& [p, cost] : model.label_costs) {
    if (cost < 0 || std::isnan(cost)) {
      return Status::InvalidArgument("negative label cost");
    }
  }
  return Status::OK();
}

}  // namespace

Result<SharedLabelingResult> SolveSharedLabelingGreedy(
    const Instance& instance, const SharedLabelingModel& model) {
  MC3_RETURN_IF_ERROR(ValidateModel(model));
  const size_t n = instance.NumQueries();
  std::unordered_set<PropertySet, PropertySetHash> selected;
  std::unordered_set<PropertyId> labeled;

  // Marginal cost: unpaid base plus unpaid labels.
  const auto marginal = [&](const PropertySet& c) -> Cost {
    if (selected.count(c) > 0) return 0;
    const auto it = model.base_costs.find(c);
    if (it == model.base_costs.end()) return kInfiniteCost;
    Cost cost = it->second;
    for (PropertyId p : c) {
      if (labeled.count(p) > 0) continue;
      const auto lit = model.label_costs.find(p);
      if (lit != model.label_costs.end()) cost += lit->second;
    }
    return cost;
  };

  SharedLabelingResult result;
  std::vector<bool> covered(n, false);
  size_t remaining = n;
  while (remaining > 0) {
    // Cheapest residual cover over all uncovered queries. Covers are
    // recomputed each round: marginal costs change with every labeling, so
    // cached values would be stale in both directions.
    size_t best = n;
    std::optional<QueryCover> best_cover;
    for (size_t i = 0; i < n; ++i) {
      if (covered[i]) continue;
      auto cover = MinCostQueryCover(instance.queries()[i], marginal);
      if (!cover.has_value()) {
        return Status::Infeasible(
            "query " +
            instance.queries()[i].ToString(instance.property_names()) +
            " has no cover under the shared-labeling model");
      }
      if (best == n || cover->cost < best_cover->cost) {
        best = i;
        best_cover = std::move(cover);
      }
    }
    for (const PropertySet& c : best_cover->classifiers) {
      if (selected.insert(c).second) {
        result.solution.Add(c);
        for (PropertyId p : c) labeled.insert(p);
      }
    }
    covered[best] = true;
    --remaining;
    // Queries incidentally covered by the new selections cost nothing.
    for (size_t i = 0; i < n; ++i) {
      if (covered[i]) continue;
      auto cover = MinCostQueryCover(instance.queries()[i], marginal);
      if (cover.has_value() && IsZeroCost(cover->cost)) {
        for (const PropertySet& c : cover->classifiers) {
          if (selected.insert(c).second) result.solution.Add(c);
        }
        covered[i] = true;
        --remaining;
      }
    }
  }
  result.cost = model.SetCost(result.solution);
  if (!Covers(instance, result.solution)) {
    return Status::Internal("shared-labeling greedy left queries uncovered");
  }
  return result;
}

namespace {

/// Branch-and-bound mirroring ExactSolver, with set-cost accounting.
class SharedSearch {
 public:
  SharedSearch(const Instance& instance, const SharedLabelingModel& model,
               uint64_t max_nodes)
      : instance_(instance), model_(model), max_nodes_(max_nodes) {
    // mc3-lint: unordered-ok(sorted below with a total-order comparator)
    for (const auto& [classifier, base] : model.base_costs) {
      classifiers_.push_back(classifier);
    }
    std::sort(classifiers_.begin(), classifiers_.end(),
              [&](const PropertySet& a, const PropertySet& b) {
                const Cost ca = model_.StandaloneCost(a);
                const Cost cb = model_.StandaloneCost(b);
                if (ca != cb) return ca < cb;
                return a < b;
              });
  }

  Result<SharedLabelingResult> Run() {
    Recurse(0);
    if (nodes_ > max_nodes_) {
      return Status::InvalidArgument(
          "shared-labeling exact search exceeded its node budget");
    }
    if (IsInfiniteCost(best_cost_)) {
      return Status::Infeasible(
          "no cover exists under the shared-labeling model");
    }
    SharedLabelingResult result;
    for (const PropertySet& c : best_) result.solution.Add(c);
    result.cost = best_cost_;
    return result;
  }

 private:
  Cost CurrentCost() const {
    Solution solution;
    for (const PropertySet& c : stack_) solution.Add(c);
    return model_.SetCost(solution);
  }

  bool FirstUncovered(size_t* query_index, PropertyId* property) const {
    for (size_t qi = 0; qi < instance_.NumQueries(); ++qi) {
      const PropertySet& q = instance_.queries()[qi];
      PropertySet covered;
      for (const PropertySet& c : stack_) {
        if (c.IsSubsetOf(q)) covered = covered.UnionWith(c);
      }
      if (covered == q) continue;
      *query_index = qi;
      *property = *q.Minus(covered).begin();
      return true;
    }
    return false;
  }

  void Recurse(int depth) {
    if (++nodes_ > max_nodes_) return;
    const Cost cost = CurrentCost();
    if (cost >= best_cost_) return;
    size_t qi;
    PropertyId p;
    if (!FirstUncovered(&qi, &p)) {
      best_cost_ = cost;
      best_ = stack_;
      return;
    }
    const PropertySet& q = instance_.queries()[qi];
    for (const PropertySet& c : classifiers_) {
      if (!c.Contains(p) || !c.IsSubsetOf(q)) continue;
      if (std::find(stack_.begin(), stack_.end(), c) != stack_.end()) {
        continue;
      }
      stack_.push_back(c);
      Recurse(depth + 1);
      stack_.pop_back();
    }
  }

  const Instance& instance_;
  const SharedLabelingModel& model_;
  const uint64_t max_nodes_;
  std::vector<PropertySet> classifiers_;
  std::vector<PropertySet> stack_;
  std::vector<PropertySet> best_;
  Cost best_cost_ = kInfiniteCost;
  uint64_t nodes_ = 0;
};

}  // namespace

Result<SharedLabelingResult> SolveSharedLabelingExact(
    const Instance& instance, const SharedLabelingModel& model,
    uint64_t max_nodes) {
  MC3_RETURN_IF_ERROR(ValidateModel(model));
  if (instance.NumQueries() > 16 || instance.MaxQueryLength() > 6 ||
      model.base_costs.size() > 512) {
    return Status::InvalidArgument(
        "instance too large for the shared-labeling exact search");
  }
  return SharedSearch(instance, model, max_nodes).Run();
}

}  // namespace mc3
