#include "core/short_first_solver.h"

#include "core/general_solver.h"
#include "core/instance_util.h"
#include "core/k2_solver.h"
#include "util/timer.h"

namespace mc3 {

Result<SolveResult> ShortFirstSolver::Solve(const Instance& instance) const {
  std::vector<size_t> short_idx;
  std::vector<size_t> long_idx;
  for (size_t i = 0; i < instance.NumQueries(); ++i) {
    (instance.queries()[i].size() <= 2 ? short_idx : long_idx).push_back(i);
  }
  if (short_idx.empty()) {
    return GeneralSolver(options_).Solve(instance);
  }
  if (long_idx.empty()) {
    return K2ExactSolver(options_).Solve(instance);
  }

  Timer timer;
  // Phase 1: exact cover of the short queries.
  const Instance short_part = SubInstance(instance, short_idx);
  auto short_result = K2ExactSolver(options_).Solve(short_part);
  if (!short_result.ok()) return short_result.status();

  // Phase 2: the residual problem. Optionally (extension, see
  // SolverOptions) classifiers already selected in phase 1 are available
  // for free; the paper's SF prices the residual with original costs.
  Instance long_part = SubInstance(instance, long_idx);
  if (options_.short_first_reuse_selections) {
    for (const PropertySet& q : long_part.queries()) {
      ForEachNonEmptySubset(q, [&](const PropertySet& classifier) {
        if (short_result->solution.Contains(classifier)) {
          long_part.SetCost(classifier, 0);
        }
      });
    }
  }
  auto long_result = GeneralSolver(options_).Solve(long_part);
  if (!long_result.ok()) return long_result.status();

  Solution merged = std::move(short_result->solution);
  merged.Merge(long_result->solution);
  auto result =
      FinishSolve(instance, std::move(merged), options_.prune_unused,
                  options_.verify_solution);
  if (!result.ok()) return result.status();
  result->num_components =
      short_result->num_components + long_result->num_components;
  result->solve_seconds = timer.Seconds();
  return result;
}

}  // namespace mc3
