// PropertySet: the fundamental value type of the MC3 model. Both queries
// and classifiers are sets of properties (paper Section 2.1): a query
// q = {x, y} asks for items satisfying x AND y; a classifier XY tests that
// same conjunction.
//
// Properties are dense uint32 ids. A PropertySet is a sorted-unique vector;
// query lengths never exceed ~10 in any workload the paper considers, so
// vector set-algebra beats bitsets over multi-thousand-property universes.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace mc3 {

/// Dense property identifier.
using PropertyId = uint32_t;

/// An immutable sorted set of properties. Models both queries and
/// classifiers.
class PropertySet {
 public:
  /// The empty set.
  PropertySet() = default;

  /// From a braced list, e.g. PropertySet::Of({0, 2, 5}). Sorts and dedups.
  static PropertySet Of(std::initializer_list<PropertyId> ids);

  /// From arbitrary (possibly unsorted, possibly duplicated) ids.
  static PropertySet FromUnsorted(std::vector<PropertyId> ids);

  /// From ids already sorted and unique (checked by assertion).
  static PropertySet FromSorted(std::vector<PropertyId> ids);

  /// Reuses this object's storage to hold the given sorted-unique ids: an
  /// allocation-free probe key for hash lookups in hot paths (the ids are
  /// copied into existing capacity).
  void AssignSortedForProbe(const PropertyId* data, size_t size);

  /// Number of properties; the paper calls this the *length* of the
  /// query/classifier.
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  bool Contains(PropertyId id) const;
  bool IsSubsetOf(const PropertySet& other) const;
  bool Intersects(const PropertySet& other) const;

  PropertySet UnionWith(const PropertySet& other) const;
  PropertySet IntersectWith(const PropertySet& other) const;
  /// Set difference: properties in this but not in `other`.
  PropertySet Minus(const PropertySet& other) const;
  /// This set plus one property (which may already be present).
  PropertySet Plus(PropertyId id) const;

  /// Sorted ids, ascending.
  const std::vector<PropertyId>& ids() const { return ids_; }
  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }

  bool operator==(const PropertySet& other) const = default;
  /// Lexicographic order (total, used for canonical sorting in outputs).
  bool operator<(const PropertySet& other) const { return ids_ < other.ids_; }

  /// FNV-1a over the id bytes.
  size_t Hash() const;

  /// Renders like "{0,2,5}", or names joined by '&' when a name table is
  /// given (e.g. "adidas&juventus").
  std::string ToString() const;
  std::string ToString(const std::vector<std::string>& names) const;

 private:
  std::vector<PropertyId> ids_;
};

/// Hash functor for unordered containers keyed by PropertySet.
struct PropertySetHash {
  size_t operator()(const PropertySet& s) const { return s.Hash(); }
};

}  // namespace mc3

