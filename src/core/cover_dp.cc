#include "core/cover_dp.h"

#include <cassert>
#include "util/float_cmp.h"

namespace mc3 {

std::optional<QueryCover> MinCostQueryCover(
    const PropertySet& query,
    const std::function<Cost(const PropertySet&)>& cost_fn) {
  const auto& ids = query.ids();
  const size_t k = ids.size();
  assert(k >= 1 && k <= 20);
  const uint32_t full = (1u << k) - 1;

  // Candidate classifiers as masks over the query's properties.
  std::vector<uint32_t> cand_masks;
  std::vector<Cost> cand_costs;
  std::vector<PropertyId> scratch;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    scratch.clear();
    for (size_t i = 0; i < k; ++i) {
      if (mask & (1u << i)) scratch.push_back(ids[i]);
    }
    const Cost cost = cost_fn(PropertySet::FromSorted(scratch));
    if (!IsInfiniteCost(cost)) {
      cand_masks.push_back(mask);
      cand_costs.push_back(cost);
    }
  }

  std::vector<Cost> dp(full + 1, kInfiniteCost);
  std::vector<int32_t> via(full + 1, -1);
  std::vector<uint32_t> from(full + 1, 0);
  dp[0] = 0;
  for (uint32_t mask = 0; mask <= full; ++mask) {
    if (IsInfiniteCost(dp[mask])) continue;
    for (size_t c = 0; c < cand_masks.size(); ++c) {
      const uint32_t next = mask | cand_masks[c];
      if (next == mask) continue;
      const Cost cost = dp[mask] + cand_costs[c];
      if (cost < dp[next]) {
        dp[next] = cost;
        via[next] = static_cast<int32_t>(c);
        from[next] = mask;
      }
    }
  }
  if (IsInfiniteCost(dp[full])) return std::nullopt;

  QueryCover cover;
  cover.cost = dp[full];
  for (uint32_t mask = full; mask != 0; mask = from[mask]) {
    const uint32_t cmask = cand_masks[via[mask]];
    scratch.clear();
    for (size_t i = 0; i < k; ++i) {
      if (cmask & (1u << i)) scratch.push_back(ids[i]);
    }
    cover.classifiers.push_back(PropertySet::FromSorted(scratch));
  }
  return cover;
}

}  // namespace mc3
