#include "core/multi_valued.h"

#include <algorithm>
#include <unordered_set>

#include "core/wsc_reduction.h"
#include "setcover/greedy.h"
#include "setcover/primal_dual.h"
#include "util/float_cmp.h"

namespace mc3 {

Result<Instance> MergeToAttributes(
    const Instance& instance,
    const std::vector<AttributeId>& property_attribute,
    const CostMap& attribute_costs) {
  Instance merged;
  std::unordered_set<PropertySet, PropertySetHash> seen;
  for (const PropertySet& q : instance.queries()) {
    std::vector<PropertyId> attrs;
    attrs.reserve(q.size());
    for (PropertyId p : q) {
      if (p >= property_attribute.size()) {
        return Status::InvalidArgument(
            "property " + std::to_string(p) + " has no attribute mapping");
      }
      attrs.push_back(property_attribute[p]);
    }
    PropertySet attr_query = PropertySet::FromUnsorted(std::move(attrs));
    // Distinct original queries can collapse to the same attribute query.
    if (seen.insert(attr_query).second) {
      merged.AddQuery(std::move(attr_query));
    }
  }
  for (const auto& [classifier, cost] : SortedCostEntries(attribute_costs)) {
    merged.SetCost(classifier, cost);
  }
  return merged;
}

std::vector<size_t> PruneMultiValued(
    const Instance& instance,
    const std::vector<MultiValuedClassifier>& multi_valued) {
  // Properties that occur in some query (others cannot matter).
  std::unordered_set<PropertyId> used;
  for (const PropertySet& q : instance.queries()) {
    used.insert(q.begin(), q.end());
  }
  std::vector<size_t> kept;
  for (size_t i = 0; i < multi_valued.size(); ++i) {
    Cost singleton_sum = 0;
    for (PropertyId p : multi_valued[i].value_properties) {
      if (used.count(p) == 0) continue;
      singleton_sum += instance.CostOf(PropertySet::Of({p}));
      if (IsInfiniteCost(singleton_sum)) break;
    }
    // Keep iff strictly cheaper than buying the singletons individually
    // (Section 5.3); an infinite singleton sum always keeps it.
    if (multi_valued[i].cost < singleton_sum) kept.push_back(i);
  }
  return kept;
}

Result<HybridSolveResult> SolveWithMultiValued(
    const Instance& instance,
    const std::vector<MultiValuedClassifier>& multi_valued) {
  WscReduction reduction = ReduceToWsc(instance);
  const size_t num_binary_sets = reduction.wsc.sets.size();

  // One extra set per surviving multi-valued classifier: it covers every
  // occurrence of its value-properties, in any query.
  const std::vector<size_t> kept = PruneMultiValued(instance, multi_valued);
  for (size_t mv_index : kept) {
    const MultiValuedClassifier& mv = multi_valued[mv_index];
    setcover::WscSet set;
    set.cost = mv.cost;
    for (size_t qi = 0; qi < instance.NumQueries(); ++qi) {
      const auto& ids = instance.queries()[qi].ids();
      for (size_t pos = 0; pos < ids.size(); ++pos) {
        if (mv.value_properties.Contains(ids[pos])) {
          set.elements.push_back(reduction.element_offset[qi] +
                                 static_cast<setcover::ElementId>(pos));
        }
      }
    }
    std::sort(set.elements.begin(), set.elements.end());
    reduction.wsc.sets.push_back(std::move(set));
  }

  auto greedy = setcover::SolveGreedy(reduction.wsc);
  if (!greedy.ok()) return greedy.status();
  auto primal_dual = setcover::SolvePrimalDual(reduction.wsc);
  if (!primal_dual.ok()) return primal_dual.status();
  const setcover::WscSolution& best =
      greedy->cost <= primal_dual->cost ? *greedy : *primal_dual;

  HybridSolveResult result;
  for (setcover::SetId id : best.selected) {
    if (static_cast<size_t>(id) < num_binary_sets) {
      result.binary.Add(reduction.set_to_classifier[id]);
      result.cost += instance.CostOf(reduction.set_to_classifier[id]);
    } else {
      const size_t mv_index = kept[static_cast<size_t>(id) - num_binary_sets];
      result.multi_valued.push_back(mv_index);
      result.cost += multi_valued[mv_index].cost;
    }
  }
  std::sort(result.multi_valued.begin(), result.multi_valued.end());
  return result;
}

}  // namespace mc3
