// Algorithm 3: the approximation solver for general MC3 (paper Section 5.2).
//
// Pipeline: preprocessing (Algorithm 1) -> per component, reduce to Weighted
// Set Cover -> run the greedy (ln Delta + 1)-approximation and a factor-f
// algorithm -> keep the cheaper of the two outputs. The combined guarantee
// is min{ln I + ln(k-1) + 1, 2^(k-1)} (Theorem 5.3).
#pragma once

#include "core/solver.h"

namespace mc3 {

/// Approximation solver for arbitrary k ("MC3[G]" in the paper's
/// experiments). Returns kInfeasible when no finite-cost solution exists.
class GeneralSolver : public Solver {
 public:
  explicit GeneralSolver(SolverOptions options = {})
      : options_(std::move(options)) {}

  std::string Name() const override { return "mc3g"; }
  Result<SolveResult> Solve(const Instance& instance) const override;

 private:
  SolverOptions options_;
};

}  // namespace mc3

