#include "core/hardness.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace mc3 {

Result<Theorem51Reduction> ReduceSetCoverToMc3(const SetCoverInstance& sc) {
  Theorem51Reduction reduction;
  const auto num_sets = static_cast<PropertyId>(sc.sets.size());
  reduction.set_properties.resize(sc.sets.size());
  for (PropertyId i = 0; i < num_sets; ++i) reduction.set_properties[i] = i;
  reduction.e_property = num_sets;

  // membership[u] = sorted set ids containing element u.
  std::vector<std::vector<PropertyId>> membership(sc.num_elements);
  for (size_t s = 0; s < sc.sets.size(); ++s) {
    for (int32_t e : sc.sets[s]) {
      if (e < 0 || e >= sc.num_elements) {
        return Status::InvalidArgument("set cover element out of range");
      }
      membership[e].push_back(static_cast<PropertyId>(s));
    }
  }

  std::unordered_set<PropertySet, PropertySetHash> seen_queries;
  for (int32_t u = 0; u < sc.num_elements; ++u) {
    if (membership[u].empty()) {
      return Status::InvalidArgument(
          "element " + std::to_string(u) +
          " belongs to no set; the SC instance is infeasible");
    }
    std::vector<PropertyId> props = membership[u];
    props.push_back(reduction.e_property);
    PropertySet query = PropertySet::FromUnsorted(std::move(props));
    // Merge elements with identical set membership (the proof's assumption
    // that queries are distinct).
    if (!seen_queries.insert(query).second) continue;

    // Price this query's length-2 classifiers: set-property pairs at 0,
    // {set-property, e} at 1.
    const auto& sets_of_u = membership[u];
    for (size_t i = 0; i < sets_of_u.size(); ++i) {
      reduction.instance.SetCost(
          PropertySet::Of({sets_of_u[i], reduction.e_property}), 1);
      for (size_t j = i + 1; j < sets_of_u.size(); ++j) {
        reduction.instance.SetCost(
            PropertySet::Of({sets_of_u[i], sets_of_u[j]}), 0);
      }
    }
    reduction.instance.AddQuery(std::move(query));
  }
  return reduction;
}

std::vector<int32_t> ExtractSetCoverSolution(
    const Theorem51Reduction& reduction, const Solution& solution) {
  std::vector<int32_t> sets;
  for (const PropertySet& c : solution.classifiers()) {
    if (c.size() == 2 && c.Contains(reduction.e_property)) {
      for (PropertyId p : c) {
        if (p != reduction.e_property) {
          sets.push_back(static_cast<int32_t>(p));
        }
      }
    }
  }
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  return sets;
}

Result<Instance> ReduceSetCoverToSingleQueryMc3(const SetCoverInstance& sc) {
  Instance instance;
  std::vector<PropertyId> all;
  all.reserve(sc.num_elements);
  for (int32_t u = 0; u < sc.num_elements; ++u) {
    all.push_back(static_cast<PropertyId>(u));
  }
  instance.AddQuery(PropertySet::FromUnsorted(std::move(all)));
  std::vector<bool> coverable(sc.num_elements, false);
  for (const auto& set : sc.sets) {
    std::vector<PropertyId> props;
    props.reserve(set.size());
    for (int32_t e : set) {
      if (e < 0 || e >= sc.num_elements) {
        return Status::InvalidArgument("set cover element out of range");
      }
      coverable[e] = true;
      props.push_back(static_cast<PropertyId>(e));
    }
    if (!props.empty()) {
      instance.SetCost(PropertySet::FromUnsorted(std::move(props)), 1);
    }
  }
  for (int32_t u = 0; u < sc.num_elements; ++u) {
    if (!coverable[u]) {
      return Status::InvalidArgument(
          "element " + std::to_string(u) +
          " belongs to no set; the SC instance is infeasible");
    }
  }
  return instance;
}

}  // namespace mc3
