// Common solver interface shared by the paper's algorithms and baselines.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/preprocess.h"
#include "core/solution.h"
#include "flow/max_flow.h"
#include "util/status.h"

namespace mc3 {

/// Options shared by the MC3 solvers.
struct SolverOptions {
  /// Run Algorithm 1 first (figures 3c/3e/3f contrast on/off).
  bool preprocess = true;
  PreprocessOptions preprocess_options;

  /// Max-flow engine for the k = 2 exact solver. The paper reports Dinic
  /// [10] performed best.
  flow::MaxFlowAlgorithm max_flow = flow::MaxFlowAlgorithm::kDinic;

  /// Algorithm 3 components: the greedy WSC algorithm [6] and the
  /// f-approximation. The paper runs both and keeps the cheaper output.
  bool run_greedy = true;
  enum class FMethod {
    kNone,        ///< greedy only
    kPrimalDual,  ///< factor-f via primal-dual (scalable default)
    kLpRounding,  ///< factor-f via LP relaxation + 1/f rounding (literal
                  ///< algorithm of [50]; dense simplex, small instances)
  };
  FMethod f_method = FMethod::kPrimalDual;

  /// Post-pass dropping classifiers no query's cheapest witness uses (never
  /// increases cost).
  bool prune_unused = true;

  /// Defensive re-verification that the assembled solution covers every
  /// query (linear in the instance size). On by default; the runtime
  /// benches disable it on both arms to time the algorithms alone, as the
  /// paper does.
  bool verify_solution = true;

  /// Extension: components whose query count does not exceed this threshold
  /// are solved exactly (branch-and-bound) instead of approximately; 0
  /// disables. Step 2 of the preprocessing often produces many tiny
  /// components for which the exact optimum is cheap to compute.
  size_t exact_component_max_queries = 0;

  /// Worker threads for solving independent sub-instances concurrently
  /// (the parallelism step 2 of Algorithm 1 enables; paper Section 3).
  /// 1 = sequential.
  size_t num_threads = 1;

  /// Extension (off = paper-faithful): when Short-First runs Algorithm 3 on
  /// the residual long queries, price the classifiers already selected by
  /// the exact short phase at zero so they are reused instead of repurchased.
  /// The paper's SF solves the residual with original costs.
  bool short_first_reuse_selections = false;
};

/// A solved instance: the classifiers to train and diagnostics.
struct SolveResult {
  Solution solution;
  /// Total construction cost under the instance's weight function.
  Cost cost = 0;
  /// Number of independent sub-instances processed.
  size_t num_components = 0;
  double preprocess_seconds = 0;
  double solve_seconds = 0;
};

/// Abstract solver.
class Solver {
 public:
  virtual ~Solver() = default;
  /// Short identifier used in benches ("mc3s", "mc3g", "qo", ...).
  virtual std::string Name() const = 0;
  /// Solves `instance`; the instance must pass Instance::Validate().
  virtual Result<SolveResult> Solve(const Instance& instance) const = 0;
};

/// Assembles a SolveResult from a full solution: verifies coverage (when
/// `verify` is set), optionally prunes unused classifiers, and computes the
/// cost under the original instance. Returns Internal if verification finds
/// an uncovered query.
Result<SolveResult> FinishSolve(const Instance& instance, Solution solution,
                                bool prune_unused, bool verify = true);

}  // namespace mc3

