// Exact branch-and-bound solver. MC3 is NP-hard (Theorems 5.1/5.2), so this
// is exponential in the worst case; it exists as (a) the optimality oracle
// for the test suite, and (b) a practical option for small instances where
// the true optimum is worth the compute. Guards reject instances beyond its
// configured size limits.
#pragma once

#include "core/solver.h"

namespace mc3 {

/// Exhaustive solver via branch-and-bound on (query, property) branching:
/// pick the first uncovered property occurrence and branch on every
/// classifier that could cover it.
class ExactSolver : public Solver {
 public:
  struct Limits {
    size_t max_queries = 24;
    size_t max_query_length = 8;
    size_t max_classifiers = 4096;
    /// Hard cap on explored branch-and-bound nodes; exceeding it returns
    /// InvalidArgument (the instance is too large for exact search).
    uint64_t max_nodes = 50'000'000;
  };

  ExactSolver() : limits_() {}
  explicit ExactSolver(const Limits& limits) : limits_(limits) {}

  std::string Name() const override { return "exact"; }
  Result<SolveResult> Solve(const Instance& instance) const override;

 private:
  Limits limits_;
};

}  // namespace mc3

