#include "core/property_set.h"

#include <algorithm>
#include <cassert>

namespace mc3 {

PropertySet PropertySet::Of(std::initializer_list<PropertyId> ids) {
  return FromUnsorted(std::vector<PropertyId>(ids));
}

PropertySet PropertySet::FromUnsorted(std::vector<PropertyId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  PropertySet s;
  s.ids_ = std::move(ids);
  return s;
}

PropertySet PropertySet::FromSorted(std::vector<PropertyId> ids) {
#ifndef NDEBUG
  for (size_t i = 1; i < ids.size(); ++i) assert(ids[i - 1] < ids[i]);
#endif
  PropertySet s;
  s.ids_ = std::move(ids);
  return s;
}

void PropertySet::AssignSortedForProbe(const PropertyId* data, size_t size) {
#ifndef NDEBUG
  for (size_t i = 1; i < size; ++i) assert(data[i - 1] < data[i]);
#endif
  ids_.assign(data, data + size);
}

bool PropertySet::Contains(PropertyId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool PropertySet::IsSubsetOf(const PropertySet& other) const {
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

bool PropertySet::Intersects(const PropertySet& other) const {
  auto a = ids_.begin();
  auto b = other.ids_.begin();
  while (a != ids_.end() && b != other.ids_.end()) {
    if (*a == *b) return true;
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return false;
}

PropertySet PropertySet::UnionWith(const PropertySet& other) const {
  std::vector<PropertyId> merged;
  merged.reserve(ids_.size() + other.ids_.size());
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(merged));
  return FromSorted(std::move(merged));
}

PropertySet PropertySet::IntersectWith(const PropertySet& other) const {
  std::vector<PropertyId> merged;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(merged));
  return FromSorted(std::move(merged));
}

PropertySet PropertySet::Minus(const PropertySet& other) const {
  std::vector<PropertyId> diff;
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                      other.ids_.end(), std::back_inserter(diff));
  return FromSorted(std::move(diff));
}

PropertySet PropertySet::Plus(PropertyId id) const {
  if (Contains(id)) return *this;
  std::vector<PropertyId> ids = ids_;
  ids.insert(std::upper_bound(ids.begin(), ids.end(), id), id);
  return FromSorted(std::move(ids));
}

size_t PropertySet::Hash() const {
  // FNV-1a over the little-endian bytes of each id.
  size_t h = 1469598103934665603ULL;
  for (PropertyId id : ids_) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (id >> shift) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

std::string PropertySet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ids_[i]);
  }
  out += '}';
  return out;
}

std::string PropertySet::ToString(
    const std::vector<std::string>& names) const {
  std::string out;
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) out += '&';
    if (ids_[i] < names.size()) {
      out += names[ids_[i]];
    } else {
      out += std::to_string(ids_[i]);
    }
  }
  return out;
}

}  // namespace mc3
