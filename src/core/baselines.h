// Baseline algorithms from the paper's experimental study (Section 6.1).
#pragma once

#include "core/solver.h"

namespace mc3 {

/// "Property-Oriented": selects the singleton classifier of every property
/// appearing in the query load (and nothing else). Always covers; the cost
/// is infinite when some singleton classifier is unpriced.
class PropertyOrientedSolver : public Solver {
 public:
  std::string Name() const override { return "po"; }
  Result<SolveResult> Solve(const Instance& instance) const override;
};

/// "Query-Oriented": selects, per query, the classifier testing the entire
/// query (and nothing else). Always covers; infinite cost when some
/// full-query classifier is unpriced.
class QueryOrientedSolver : public Solver {
 public:
  std::string Name() const override { return "qo"; }
  Result<SolveResult> Solve(const Instance& instance) const override;
};

/// "Mixed": the algorithm of [Dushkin et al., EDBT 2019] for uniform
/// classifier costs and k <= 2. Reconstruction (the paper gives no
/// pseudo-code): minimizing total cost with uniform costs is minimizing the
/// number of classifiers, i.e. unweighted bipartite vertex cover, solved
/// exactly via Hopcroft-Karp + Koenig. Queries whose pair classifier (or a
/// needed singleton) is unpriced are handled by forcing the only remaining
/// option first. Exact for uniform costs; a heuristic otherwise.
class MixedSolver : public Solver {
 public:
  std::string Name() const override { return "mixed"; }
  Result<SolveResult> Solve(const Instance& instance) const override;
};

/// "Local-Greedy": iteratively finds, over all uncovered queries, the one
/// with the least costly cover (given previously selected classifiers at
/// cost zero), and selects that cover. Per-query covers are computed exactly
/// by subset DP (O(4^k) per query, k constant).
class LocalGreedySolver : public Solver {
 public:
  std::string Name() const override { return "lg"; }
  Result<SolveResult> Solve(const Instance& instance) const override;
};

}  // namespace mc3

