#include "core/instance.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "util/float_cmp.h"

namespace mc3 {

std::vector<std::pair<PropertySet, Cost>> SortedCostEntries(
    const CostMap& costs) {
  std::vector<std::pair<PropertySet, Cost>> entries(costs.begin(),
                                                    costs.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

void Instance::SetCost(const PropertySet& classifier, Cost cost) {
  if (IsInfiniteCost(cost)) {
    costs_.erase(classifier);
  } else {
    costs_[classifier] = cost;
  }
}

Cost Instance::CostOf(const PropertySet& classifier) const {
  const auto it = costs_.find(classifier);
  return it == costs_.end() ? kInfiniteCost : it->second;
}

size_t Instance::MaxQueryLength() const {
  size_t k = 0;
  for (const auto& q : queries_) k = std::max(k, q.size());
  return k;
}

size_t Instance::NumProperties() const {
  std::unordered_set<PropertyId> props;
  for (const auto& q : queries_) props.insert(q.begin(), q.end());
  return props.size();
}

size_t Instance::Incidence() const {
  // I(S) = |{q : S subseteq q}| for finite-weight S; I = max I(S).
  std::unordered_map<PropertySet, size_t, PropertySetHash> counts;
  for (const auto& q : queries_) {
    ForEachNonEmptySubset(q, [&](const PropertySet& sub) {
      if (costs_.count(sub) > 0) ++counts[sub];
    });
  }
  size_t incidence = 0;
  // mc3-lint: unordered-ok(max over all entries is visit-order independent)
  for (const auto& [classifier, count] : counts) {
    incidence = std::max(incidence, count);
  }
  return incidence;
}

Status Instance::Validate() const {
  {
    std::unordered_set<PropertySet, PropertySetHash> seen;
    for (const auto& q : queries_) {
      if (q.empty()) return Status::InvalidArgument("empty query");
      if (!seen.insert(q).second) {
        return Status::InvalidArgument("duplicate query " + q.ToString());
      }
    }
  }
  // property -> query ids containing it, for relevance checks.
  std::unordered_map<PropertyId, std::vector<size_t>> prop_queries;
  for (size_t i = 0; i < queries_.size(); ++i) {
    for (PropertyId p : queries_[i]) prop_queries[p].push_back(i);
  }
  // Sorted so the first reported validation error is deterministic.
  for (const auto& [classifier, cost] : SortedCostEntries(costs_)) {
    if (classifier.empty()) {
      return Status::InvalidArgument("priced empty classifier");
    }
    if (cost < 0 || std::isnan(cost)) {
      return Status::InvalidArgument("invalid cost for classifier " +
                                     classifier.ToString());
    }
    const auto it = prop_queries.find(*classifier.begin());
    bool relevant = false;
    if (it != prop_queries.end()) {
      for (size_t qi : it->second) {
        if (classifier.IsSubsetOf(queries_[qi])) {
          relevant = true;
          break;
        }
      }
    }
    if (!relevant) {
      return Status::InvalidArgument(
          "classifier " + classifier.ToString() +
          " is not a subset of any query (not in C_Q)");
    }
  }
  return Status::OK();
}

bool Instance::IsFeasible() const {
  // Allocation-free: enumerate each query's subsets through a reused probe
  // and OR position masks until the query is covered.
  PropertySet probe;
  std::vector<PropertyId> scratch;
  for (const auto& q : queries_) {
    const auto& ids = q.ids();
    const size_t len = ids.size();
    if (len > 25) return false;  // out of scope for this library
    const uint32_t full = (1u << len) - 1;
    uint32_t covered = 0;
    for (uint32_t mask = 1; mask <= full && covered != full; ++mask) {
      if ((mask | covered) == covered) continue;  // adds nothing new
      scratch.clear();
      for (size_t i = 0; i < len; ++i) {
        if (mask & (1u << i)) scratch.push_back(ids[i]);
      }
      probe.AssignSortedForProbe(scratch.data(), scratch.size());
      if (costs_.count(probe) > 0) covered |= mask;
    }
    if (covered != full) return false;
  }
  return true;
}

void ForEachNonEmptySubset(
    const PropertySet& set,
    const std::function<void(const PropertySet&)>& fn) {
  const auto& ids = set.ids();
  assert(ids.size() <= 25 && "subset enumeration would explode");
  const uint32_t limit = 1u << ids.size();
  std::vector<PropertyId> scratch;
  for (uint32_t mask = 1; mask < limit; ++mask) {
    scratch.clear();
    for (size_t i = 0; i < ids.size(); ++i) {
      if (mask & (1u << i)) scratch.push_back(ids[i]);
    }
    fn(PropertySet::FromSorted(scratch));
  }
}

PropertyId InstanceBuilder::Intern(const std::string& name) {
  const auto it = interned_.find(name);
  if (it != interned_.end()) return it->second;
  const PropertyId id = static_cast<PropertyId>(names_.size());
  interned_.emplace(name, id);
  names_.push_back(name);
  return id;
}

InstanceBuilder& InstanceBuilder::AddQuery(
    const std::vector<std::string>& names) {
  std::vector<PropertyId> ids;
  ids.reserve(names.size());
  for (const auto& n : names) ids.push_back(Intern(n));
  instance_.AddQuery(PropertySet::FromUnsorted(std::move(ids)));
  return *this;
}

InstanceBuilder& InstanceBuilder::SetCost(
    const std::vector<std::string>& names, Cost cost) {
  std::vector<PropertyId> ids;
  ids.reserve(names.size());
  for (const auto& n : names) ids.push_back(Intern(n));
  instance_.SetCost(PropertySet::FromUnsorted(std::move(ids)), cost);
  return *this;
}

InstanceBuilder& InstanceBuilder::PriceAllClassifiers(
    const std::function<Cost(const PropertySet&)>& cost_fn) {
  for (const auto& q : instance_.queries()) {
    ForEachNonEmptySubset(q, [&](const PropertySet& sub) {
      if (IsInfiniteCost(instance_.CostOf(sub))) {
        instance_.SetCost(sub, cost_fn(sub));
      }
    });
  }
  return *this;
}

Instance InstanceBuilder::Build() && {
  instance_.set_property_names(std::move(names_));
  return std::move(instance_);
}

}  // namespace mc3
