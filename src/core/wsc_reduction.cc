#include "core/wsc_reduction.h"

#include <algorithm>
#include <unordered_map>
#include "util/float_cmp.h"

namespace mc3 {

WscReduction ReduceToWsc(const Instance& instance) {
  WscReduction reduction;
  const auto& queries = instance.queries();

  // Element ids: contiguous per query, in sorted property order.
  reduction.element_offset.resize(queries.size());
  setcover::ElementId next = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    reduction.element_offset[qi] = next;
    next += static_cast<setcover::ElementId>(queries[qi].size());
  }
  reduction.wsc.num_elements = next;

  // Gather, per classifier, the elements it covers, by enumerating each
  // query's priced subsets (this touches exactly the classifiers relevant
  // to each query, i.e. those with S subseteq q).
  std::unordered_map<PropertySet, std::vector<setcover::ElementId>,
                     PropertySetHash>
      covered;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const PropertySet& q = queries[qi];
    const auto& ids = q.ids();
    ForEachNonEmptySubset(q, [&](const PropertySet& sub) {
      if (IsInfiniteCost(instance.CostOf(sub))) return;
      auto& elements = covered[sub];
      size_t pos = 0;
      for (PropertyId p : sub) {
        while (ids[pos] != p) ++pos;  // sub is sorted, so pos only advances
        elements.push_back(reduction.element_offset[qi] +
                           static_cast<setcover::ElementId>(pos));
      }
    });
  }

  // Canonical set order for determinism.
  std::vector<const PropertySet*> order;
  order.reserve(covered.size());
  // mc3-lint: unordered-ok(sorted into the canonical order just below)
  for (const auto& [classifier, elements] : covered) {
    order.push_back(&classifier);
  }
  std::sort(order.begin(), order.end(),
            [](const PropertySet* a, const PropertySet* b) {
              if (a->size() != b->size()) return a->size() < b->size();
              return *a < *b;
            });

  reduction.wsc.sets.reserve(order.size());
  reduction.set_to_classifier.reserve(order.size());
  for (const PropertySet* classifier : order) {
    setcover::WscSet set;
    set.elements = std::move(covered[*classifier]);
    std::sort(set.elements.begin(), set.elements.end());
    set.cost = instance.CostOf(*classifier);
    reduction.wsc.sets.push_back(std::move(set));
    reduction.set_to_classifier.push_back(*classifier);
  }
  return reduction;
}

Solution WscSolutionToMc3(const WscReduction& reduction,
                          const setcover::WscSolution& wsc_solution) {
  Solution solution;
  for (setcover::SetId id : wsc_solution.selected) {
    solution.Add(reduction.set_to_classifier[id]);
  }
  return solution;
}

}  // namespace mc3
