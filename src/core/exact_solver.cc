#include "core/exact_solver.h"

#include <algorithm>
#include <limits>
#include <unordered_set>
#include "util/float_cmp.h"

namespace mc3 {
namespace {

class BranchAndBound {
 public:
  BranchAndBound(const Instance& instance, uint64_t max_nodes)
      : instance_(instance), max_nodes_(max_nodes) {
    // All finite-cost classifiers, cheapest first (finds good incumbents
    // early, tightening the bound).
    // mc3-lint: unordered-ok(sorted below with a total-order comparator)
    for (const auto& [classifier, cost] : instance.costs()) {
      classifiers_.push_back(classifier);
    }
    std::sort(classifiers_.begin(), classifiers_.end(),
              [&](const PropertySet& a, const PropertySet& b) {
                const Cost ca = instance_.CostOf(a);
                const Cost cb = instance_.CostOf(b);
                if (ca != cb) return ca < cb;
                return a < b;
              });
  }

  Result<Solution> Run() {
    best_cost_ = kInfiniteCost;
    Recurse(0);
    if (nodes_ > max_nodes_) {
      return Status::InvalidArgument(
          "exact search exceeded the node budget; instance too large");
    }
    if (IsInfiniteCost(best_cost_)) {
      return Status::Infeasible("no finite-cost solution exists");
    }
    Solution solution;
    for (const PropertySet& c : best_) solution.Add(c);
    return solution;
  }

 private:
  /// Finds the first (query, property) not covered by the current selection;
  /// returns false when everything is covered.
  bool FirstUncovered(size_t* query_index, PropertyId* property) const {
    for (size_t qi = 0; qi < instance_.NumQueries(); ++qi) {
      const PropertySet& q = instance_.queries()[qi];
      PropertySet covered;
      for (const PropertySet& c : stack_) {
        if (c.IsSubsetOf(q)) covered = covered.UnionWith(c);
      }
      if (covered == q) continue;
      *query_index = qi;
      *property = *q.Minus(covered).begin();
      return true;
    }
    return false;
  }

  void Recurse(Cost cost_so_far) {
    if (++nodes_ > max_nodes_) return;
    if (cost_so_far >= best_cost_) return;
    size_t qi;
    PropertyId p;
    if (!FirstUncovered(&qi, &p)) {
      best_cost_ = cost_so_far;
      best_ = stack_;
      return;
    }
    const PropertySet& q = instance_.queries()[qi];
    for (const PropertySet& c : classifiers_) {
      if (!c.Contains(p) || !c.IsSubsetOf(q)) continue;
      if (std::find(stack_.begin(), stack_.end(), c) != stack_.end()) {
        continue;  // already selected, yet p uncovered => c can't help
      }
      stack_.push_back(c);
      Recurse(cost_so_far + instance_.CostOf(c));
      stack_.pop_back();
    }
  }

  const Instance& instance_;
  const uint64_t max_nodes_;
  std::vector<PropertySet> classifiers_;
  std::vector<PropertySet> stack_;
  std::vector<PropertySet> best_;
  Cost best_cost_ = kInfiniteCost;
  uint64_t nodes_ = 0;
};

}  // namespace

Result<SolveResult> ExactSolver::Solve(const Instance& instance) const {
  if (instance.NumQueries() > limits_.max_queries) {
    return Status::InvalidArgument("too many queries for exact search");
  }
  if (instance.MaxQueryLength() > limits_.max_query_length) {
    return Status::InvalidArgument("queries too long for exact search");
  }
  if (instance.costs().size() > limits_.max_classifiers) {
    return Status::InvalidArgument("too many classifiers for exact search");
  }
  BranchAndBound search(instance, limits_.max_nodes);
  auto solution = search.Run();
  if (!solution.ok()) return solution.status();
  return FinishSolve(instance, std::move(*solution), /*prune_unused=*/false);
}

}  // namespace mc3
