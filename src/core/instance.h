// The MC3 problem instance <Q, W> (paper Section 2.1): a set Q of distinct
// conjunctive queries and a weight function W over the classifier universe
// C_Q (every non-empty subset of every query). Classifiers absent from the
// explicit cost table have weight +infinity — the paper's convention for
// classifiers that are omitted from the input (infeasible to train, cost
// unbounded, or pruned in advance).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/property_set.h"
#include "util/status.h"

namespace mc3 {

/// Classifier construction cost. The paper's unit N may stand for dollars,
/// labeled examples, or expert hours.
using Cost = double;

/// Weight of classifiers omitted from the input.
inline constexpr Cost kInfiniteCost = std::numeric_limits<Cost>::infinity();

/// Map from classifier (property set) to its construction cost.
using CostMap = std::unordered_map<PropertySet, Cost, PropertySetHash>;

/// The entries of `costs` as a vector sorted by classifier (PropertySet's
/// lexicographic order). Iterating a CostMap directly is order-unstable
/// across platforms and insertion histories (lint rule R1); every loop whose
/// effect can depend on visit order must go through this instead.
std::vector<std::pair<PropertySet, Cost>> SortedCostEntries(
    const CostMap& costs);

/// An MC3 instance.
class Instance {
 public:
  /// Appends a query. Queries must be non-empty and pairwise distinct
  /// (checked by Validate, not here).
  void AddQuery(PropertySet query) { queries_.push_back(std::move(query)); }

  /// Sets the construction cost of `classifier` (overwriting any previous
  /// cost). Setting kInfiniteCost erases the entry.
  void SetCost(const PropertySet& classifier, Cost cost);

  /// Cost of `classifier`; +infinity when absent from the table.
  Cost CostOf(const PropertySet& classifier) const;

  const std::vector<PropertySet>& queries() const { return queries_; }
  size_t NumQueries() const { return queries_.size(); }
  const CostMap& costs() const { return costs_; }

  /// k: the maximal query length (0 for an empty instance).
  size_t MaxQueryLength() const;

  /// Number of distinct properties appearing in queries.
  size_t NumProperties() const;

  /// The incidence I (paper Section 5): the maximum, over finite-cost
  /// classifiers, of the number of queries containing the classifier.
  size_t Incidence() const;

  /// Optional human-readable property names (index = PropertyId).
  void set_property_names(std::vector<std::string> names) {
    property_names_ = std::move(names);
  }
  const std::vector<std::string>& property_names() const {
    return property_names_;
  }

  /// Structural validation: non-empty distinct queries, non-negative costs,
  /// every priced classifier non-empty and relevant (a subset of at least
  /// one query, i.e. a member of C_Q).
  Status Validate() const;

  /// True iff every query can be covered at finite cost (using only
  /// finite-cost classifiers).
  bool IsFeasible() const;

 private:
  std::vector<PropertySet> queries_;
  CostMap costs_;
  std::vector<std::string> property_names_;
};

/// Calls `fn` for every non-empty subset of `set` (including `set` itself).
/// Set size must be <= 25 (the enumeration is 2^|set|).
void ForEachNonEmptySubset(const PropertySet& set,
                           const std::function<void(const PropertySet&)>& fn);

/// Convenience builder interning string property names to dense ids:
///   InstanceBuilder b;
///   b.AddQuery({"adidas", "juventus", "white"});
///   b.SetCost({"adidas", "juventus"}, 3);
///   Instance inst = std::move(b).Build();
class InstanceBuilder {
 public:
  /// Interns `name`, returning its id.
  PropertyId Intern(const std::string& name);

  /// Adds a query over named properties.
  InstanceBuilder& AddQuery(const std::vector<std::string>& names);

  /// Prices a classifier over named properties.
  InstanceBuilder& SetCost(const std::vector<std::string>& names, Cost cost);

  /// Prices every not-yet-priced classifier in C_Q via `cost_fn`. Useful for
  /// generators; cost_fn returning kInfiniteCost leaves the classifier
  /// unpriced (omitted).
  InstanceBuilder& PriceAllClassifiers(
      const std::function<Cost(const PropertySet&)>& cost_fn);

  /// Finalizes; the builder is left empty.
  Instance Build() &&;

 private:
  Instance instance_;
  std::unordered_map<std::string, PropertyId> interned_;
  std::vector<std::string> names_;
};

}  // namespace mc3

