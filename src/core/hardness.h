// Executable versions of the paper's hardness reductions (Section 5.1).
// These build the MC3 instances used in the proofs of Theorems 5.1 and 5.2
// from a Set Cover instance, and map solutions back. The test suite uses
// them to verify the cost-preserving equivalence the proofs claim.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/solution.h"
#include "util/status.h"

namespace mc3 {

/// An unweighted Set Cover instance: `sets[i]` lists the element ids
/// (0..num_elements-1) of set i.
struct SetCoverInstance {
  int32_t num_elements = 0;
  std::vector<std::vector<int32_t>> sets;
};

/// The Theorem 5.1 construction: every SC set becomes a set-property; every
/// element becomes a query over the sets containing it plus the shared
/// property e. Classifiers of two set-properties cost 0; classifiers
/// {set-property, e} cost 1; nothing else is priced. A minimum MC3 solution
/// has the same cost as a minimum set cover.
struct Theorem51Reduction {
  Instance instance;
  PropertyId e_property = 0;
  /// set_properties[i] is the property id of SC set i.
  std::vector<PropertyId> set_properties;
};

/// Builds the reduction. Requires every element to belong to at least one
/// set, and merges duplicate queries (elements with identical set
/// membership), as the proof assumes.
Result<Theorem51Reduction> ReduceSetCoverToMc3(const SetCoverInstance& sc);

/// Extracts the Set Cover solution from an MC3 solution of the reduced
/// instance: every selected {set-property, e} classifier contributes its
/// set. The returned selection has cardinality equal to the number of such
/// classifiers (= the MC3 solution cost).
std::vector<int32_t> ExtractSetCoverSolution(
    const Theorem51Reduction& reduction, const Solution& solution);

/// The Theorem 5.2 construction: a single query with one property per
/// element, and one weight-1 classifier per SC set. Requires every element
/// covered by some set.
Result<Instance> ReduceSetCoverToSingleQueryMc3(const SetCoverInstance& sc);

}  // namespace mc3

