// Instance statistics (the quantities reported in Table 1 and quoted in the
// paper's dataset descriptions).
#pragma once

#include <string>
#include <vector>

#include "core/instance.h"

namespace mc3 {

/// Descriptive statistics of an MC3 instance.
struct InstanceStats {
  size_t num_queries = 0;
  size_t num_properties = 0;
  size_t num_classifiers = 0;  ///< finite-cost classifiers
  size_t max_query_length = 0;
  Cost min_cost = 0;  ///< over finite-cost classifiers (0 when none)
  Cost max_cost = 0;
  /// length_histogram[l] = number of queries of length l (index 0 unused).
  std::vector<size_t> length_histogram;
  /// Fraction of queries with length <= 2, in [0, 1].
  double fraction_short = 0;
  size_t incidence = 0;  ///< the paper's I parameter
  bool feasible = false;
};

/// Computes the statistics (incidence computation enumerates each query's
/// priced subsets; linear in the instance size for constant k).
InstanceStats ComputeStats(const Instance& instance);

/// Renders the Table-1 style row "name, #queries, max cost, max length".
std::string StatsRow(const std::string& name, const InstanceStats& stats);

}  // namespace mc3

