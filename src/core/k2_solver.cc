#include "core/k2_solver.h"

#include <unordered_map>

#include "flow/bipartite_vertex_cover.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace mc3 {
namespace {

/// Solves one (preprocessed) sub-instance with queries of length <= 2 by the
/// bipartite WVC -> max-flow reduction, appending chosen classifiers to
/// `out`.
///
/// Left vertices are the singleton classifiers of the component's
/// properties; right vertices are the full-query classifiers. A length-2
/// query xy contributes edges (X, XY) and (Y, XY): covering both edges means
/// either XY is chosen, or X and Y both are — exactly the two ways to cover
/// xy. A singleton query x (present only when preprocessing is disabled)
/// contributes an edge to an infinite-weight right vertex, forcing X into
/// the cover.
Status SolveComponent(const Instance& component,
                      flow::MaxFlowAlgorithm algorithm, Solution* out) {
  obs::ScopedSpan span("k2_component");
  flow::BipartiteVcInstance vc;
  std::unordered_map<PropertyId, int32_t> left_index;
  std::vector<PropertyId> left_property;
  std::vector<const PropertySet*> right_query;  // length-2 queries only
  {
    obs::ScopedSpan build("build_vc");
    auto left_of = [&](PropertyId p) {
      const auto [it, inserted] =
          left_index.emplace(p, static_cast<int32_t>(vc.left_weights.size()));
      if (inserted) {
        vc.left_weights.push_back(component.CostOf(PropertySet::Of({p})));
        left_property.push_back(p);
      }
      return it->second;
    };

    for (const PropertySet& q : component.queries()) {
      if (q.size() > 2) {
        return Status::InvalidArgument(
            "k=2 solver given query of length " + std::to_string(q.size()));
      }
      const auto r = static_cast<int32_t>(vc.right_weights.size());
      if (q.size() == 1) {
        // Force the singleton classifier into the cover.
        vc.right_weights.push_back(kInfiniteCost);
        right_query.push_back(nullptr);
        vc.edges.emplace_back(left_of(*q.begin()), r);
      } else {
        vc.right_weights.push_back(component.CostOf(q));
        right_query.push_back(&q);
        for (PropertyId p : q) vc.edges.emplace_back(left_of(p), r);
      }
    }
    build.AddStat("left", static_cast<double>(vc.left_weights.size()));
    build.AddStat("right", static_cast<double>(vc.right_weights.size()));
    build.AddStat("edges", static_cast<double>(vc.edges.size()));
  }
  span.AddStat("queries", static_cast<double>(component.queries().size()));

  obs::ScopedSpan flow_span("maxflow");
  auto cover = flow::SolveBipartiteVertexCover(vc, algorithm);
  if (!cover.ok()) {
    if (cover.status().code() == StatusCode::kInfeasible) {
      return Status::Infeasible(
          "a length-2 query has neither its pair classifier nor both "
          "singleton classifiers at finite cost");
    }
    return cover.status();
  }
  for (size_t l = 0; l < vc.left_weights.size(); ++l) {
    if (cover->left_in_cover[l]) {
      out->Add(PropertySet::Of({left_property[l]}));
    }
  }
  for (size_t r = 0; r < vc.right_weights.size(); ++r) {
    if (cover->right_in_cover[r] && right_query[r] != nullptr) {
      out->Add(*right_query[r]);
    }
  }
  return Status::OK();
}

}  // namespace

Result<SolveResult> K2ExactSolver::Solve(const Instance& instance) const {
  if (instance.MaxQueryLength() > 2) {
    return Status::InvalidArgument(
        "K2ExactSolver requires max query length <= 2; use GeneralSolver");
  }
  obs::ScopedSpan span("k2_solver");
  Timer preprocess_timer;
  Solution solution;
  std::vector<Instance> components;
  size_t num_components;
  if (options_.preprocess) {
    auto pre = Preprocess(instance, options_.preprocess_options);
    if (!pre.ok()) return pre.status();
    solution.Merge(pre->forced);
    components = std::move(pre->components);
    num_components = components.size();
  } else {
    if (!instance.IsFeasible()) {
      return Status::Infeasible("no finite-cost solution exists");
    }
    components.push_back(instance);
    num_components = 1;
  }
  const double preprocess_seconds = preprocess_timer.Seconds();

  Timer solve_timer;
  std::vector<Solution> component_solutions(components.size());
  std::vector<Status> component_statuses(components.size());
  const obs::TraceContext trace_context = obs::CurrentTraceContext();
  ParallelFor(components.size(), options_.num_threads, [&](size_t i) {
    obs::ScopedSpanAdoption adopt(trace_context);
    component_statuses[i] = SolveComponent(components[i], options_.max_flow,
                                           &component_solutions[i]);
  });
  obs::MetricsRegistry::Global()
      .GetCounter("k2.components_solved")
      .Add(components.size());
  for (size_t i = 0; i < components.size(); ++i) {
    MC3_RETURN_IF_ERROR(component_statuses[i]);
    solution.Merge(component_solutions[i]);
  }
  const double solve_seconds = solve_timer.Seconds();

  auto result =
      FinishSolve(instance, std::move(solution), options_.prune_unused,
                  options_.verify_solution);
  if (!result.ok()) return result.status();
  result->num_components = num_components;
  result->preprocess_seconds = preprocess_seconds;
  result->solve_seconds = solve_seconds;
  return result;
}

}  // namespace mc3
