#include "core/partial_cover.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "core/cover_dp.h"
#include "util/float_cmp.h"

namespace mc3 {
namespace {

Status ValidateBudgeted(const BudgetedInstance& input) {
  if (input.query_weights.size() != input.instance.NumQueries()) {
    return Status::InvalidArgument(
        "query_weights size must match the number of queries");
  }
  for (double w : input.query_weights) {
    if (!(w > 0) || !std::isfinite(w)) {
      return Status::InvalidArgument("query weights must be positive finite");
    }
  }
  if (input.budget < 0 || std::isnan(input.budget)) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  return Status::OK();
}

/// Marks queries covered by `selected`, returning (weight, indices).
void EvaluateCoverage(const BudgetedInstance& input,
                      const Solution& selected, BudgetedResult* result) {
  result->covered_weight = 0;
  result->covered_queries.clear();
  const CoverageReport report = VerifyCoverage(input.instance, selected);
  for (size_t qi = 0; qi < input.instance.NumQueries(); ++qi) {
    bool covered = true;
    PropertySet unioned;
    for (const PropertySet& c : report.witnesses[qi]) {
      unioned = unioned.UnionWith(c);
    }
    covered = unioned == input.instance.queries()[qi];
    if (covered) {
      result->covered_weight += input.query_weights[qi];
      result->covered_queries.push_back(qi);
    }
  }
}

}  // namespace

Result<BudgetedResult> SolveBudgetedGreedy(const BudgetedInstance& input) {
  MC3_RETURN_IF_ERROR(ValidateBudgeted(input));
  const Instance& instance = input.instance;
  const size_t n = instance.NumQueries();

  std::unordered_set<PropertySet, PropertySetHash> selected;
  const auto effective = [&](const PropertySet& c) -> Cost {
    return selected.count(c) > 0 ? 0 : instance.CostOf(c);
  };

  std::unordered_map<PropertyId, std::vector<size_t>> by_prop;
  for (size_t i = 0; i < n; ++i) {
    for (PropertyId p : instance.queries()[i]) by_prop[p].push_back(i);
  }

  // Cached residual covers (nullopt = uncoverable at finite cost).
  std::vector<std::optional<QueryCover>> covers(n);
  std::vector<bool> covered(n, false);
  for (size_t i = 0; i < n; ++i) {
    covers[i] = MinCostQueryCover(instance.queries()[i], effective);
  }

  BudgetedResult result;
  while (true) {
    // Commit every query whose residual cover is free.
    bool progressed = false;
    for (size_t i = 0; i < n; ++i) {
      if (!covered[i] && covers[i].has_value() && IsZeroCost(covers[i]->cost)) {
        covered[i] = true;
        progressed = true;
      }
    }
    // Pick the best-density affordable query.
    size_t best = n;
    double best_ratio = -1;
    const Cost remaining = input.budget - result.spent;
    for (size_t i = 0; i < n; ++i) {
      if (covered[i] || !covers[i].has_value()) continue;
      const Cost cost = covers[i]->cost;
      if (cost > remaining) continue;
      const double ratio = input.query_weights[i] / cost;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = i;
      }
    }
    if (best == n) {
      if (!progressed) break;
      continue;
    }
    // Commit `best`'s residual cover.
    std::unordered_set<PropertyId> touched;
    for (const PropertySet& c : covers[best]->classifiers) {
      if (selected.insert(c).second) {
        result.solution.Add(c);
        result.spent += instance.CostOf(c);
        for (PropertyId p : c) touched.insert(p);
      }
    }
    covered[best] = true;
    // Refresh the residual covers of affected queries.
    std::unordered_set<size_t> affected;
    // mc3-lint: unordered-ok(keyed inserts into a set; order-independent)
    for (PropertyId p : touched) {
      for (size_t qi : by_prop[p]) {
        if (!covered[qi]) affected.insert(qi);
      }
    }
    // mc3-lint: unordered-ok(per-query recompute is keyed and idempotent)
    for (size_t qi : affected) {
      covers[qi] = MinCostQueryCover(instance.queries()[qi], effective);
    }
  }
  EvaluateCoverage(input, result.solution, &result);
  return result;
}

namespace {

/// Exhaustive search: per query, either skip it or commit one of its
/// irredundant covers (classifiers already selected are free). Incidental
/// coverage is credited at the leaves.
class BudgetedSearch {
 public:
  BudgetedSearch(const BudgetedInstance& input, uint64_t max_nodes)
      : input_(input), max_nodes_(max_nodes) {
    // mc3-lint: unordered-ok(sorted into canonical order just below)
    for (const auto& [classifier, cost] : input.instance.costs()) {
      classifiers_.push_back(classifier);
    }
    std::sort(classifiers_.begin(), classifiers_.end());
    suffix_weight_.resize(input.query_weights.size() + 1, 0);
    for (size_t i = input.query_weights.size(); i-- > 0;) {
      suffix_weight_[i] = suffix_weight_[i + 1] + input.query_weights[i];
    }
  }

  Result<BudgetedResult> Run() {
    RecurseQuery(0, 0);
    if (nodes_ > max_nodes_) {
      return Status::InvalidArgument(
          "budgeted exact search exceeded its node budget");
    }
    BudgetedResult result;
    for (const PropertySet& c : best_set_) result.solution.Add(c);
    result.spent = best_spent_;
    EvaluateCoverage(input_, result.solution, &result);
    return result;
  }

 private:
  void Leaf(Cost spent) {
    Solution solution;
    for (const PropertySet& c : stack_) solution.Add(c);
    BudgetedResult eval;
    EvaluateCoverage(input_, solution, &eval);
    if (eval.covered_weight > best_weight_ + 1e-12 ||
        (eval.covered_weight > best_weight_ - 1e-12 &&
         spent < best_spent_)) {
      best_weight_ = eval.covered_weight;
      best_spent_ = spent;
      best_set_ = stack_;
    }
  }

  void RecurseQuery(size_t qi, Cost spent) {
    if (++nodes_ > max_nodes_) return;
    // Bound: even covering everything remaining cannot beat the incumbent.
    // (Incidental coverage of skipped earlier queries is already possible
    // in the committed branches, so this bound is safe only as
    // total-weight cap.)
    if (best_weight_ >= suffix_weight_[0] - 1e-12) return;
    if (qi == input_.instance.NumQueries()) {
      Leaf(spent);
      return;
    }
    // Branch 1: do not commit a cover for this query.
    RecurseQuery(qi + 1, spent);
    // Branch 2: commit each irredundant cover that fits the budget.
    CoverBranches(qi, input_.instance.queries()[qi], spent);
  }

  /// Enumerates covers of query `qi` property-first, recursing into the
  /// next query whenever the query becomes covered.
  void CoverBranches(size_t qi, const PropertySet& query, Cost spent) {
    if (++nodes_ > max_nodes_) return;
    PropertySet covered;
    for (const PropertySet& c : stack_) {
      if (c.IsSubsetOf(query)) covered = covered.UnionWith(c);
    }
    const PropertySet missing = query.Minus(covered);
    if (missing.empty()) {
      RecurseQuery(qi + 1, spent);
      return;
    }
    const PropertyId p = *missing.begin();
    for (const PropertySet& c : classifiers_) {
      if (!c.Contains(p) || !c.IsSubsetOf(query)) continue;
      if (std::find(stack_.begin(), stack_.end(), c) != stack_.end()) {
        continue;
      }
      const Cost cost = input_.instance.CostOf(c);
      if (spent + cost > input_.budget + 1e-12) continue;
      stack_.push_back(c);
      CoverBranches(qi, query, spent + cost);
      stack_.pop_back();
    }
  }

  const BudgetedInstance& input_;
  const uint64_t max_nodes_;
  std::vector<PropertySet> classifiers_;
  std::vector<double> suffix_weight_;
  std::vector<PropertySet> stack_;
  std::vector<PropertySet> best_set_;
  double best_weight_ = -1;
  Cost best_spent_ = 0;
  uint64_t nodes_ = 0;
};

}  // namespace

Result<BudgetedResult> SolveBudgetedExact(const BudgetedInstance& input,
                                          const BudgetedExactLimits& limits) {
  MC3_RETURN_IF_ERROR(ValidateBudgeted(input));
  if (input.instance.NumQueries() > limits.max_queries) {
    return Status::InvalidArgument("too many queries for exact search");
  }
  if (input.instance.MaxQueryLength() > limits.max_query_length) {
    return Status::InvalidArgument("queries too long for exact search");
  }
  return BudgetedSearch(input, limits.max_nodes).Run();
}

}  // namespace mc3
