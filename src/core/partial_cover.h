// Budgeted partial cover — the variant the paper poses as future work
// (Sections 2.1, 5.3 and 8): queries carry importance weights, the spend on
// classifiers is capped by a budget, and the goal is to maximize the total
// weight of *fully* covered queries (partially satisfying a query is
// worthless, per the user-satisfaction findings the paper cites).
//
// The paper proves its WSC reduction does not extend to this variant and
// notes the problem is much harder to approximate; accordingly this module
// ships a practical heuristic (density-greedy over per-query minimum-cost
// residual covers) plus an exact branch-and-bound oracle for small
// instances, rather than an approximation scheme.
#pragma once

#include <vector>

#include "core/instance.h"
#include "core/solution.h"
#include "util/status.h"

namespace mc3 {

/// Input for the budgeted variant.
struct BudgetedInstance {
  Instance instance;
  /// weight[i] is the importance of instance.queries()[i]; all weights must
  /// be positive.
  std::vector<double> query_weights;
  Cost budget = 0;
};

/// A budgeted solution: the classifiers trained, the spend, and the covered
/// weight.
struct BudgetedResult {
  Solution solution;
  Cost spent = 0;
  double covered_weight = 0;
  std::vector<size_t> covered_queries;  ///< indices, ascending
};

/// Density-greedy heuristic: repeatedly commits the uncovered query with the
/// highest (weight / residual cover cost) ratio whose residual cover fits
/// the remaining budget; previously bought classifiers are free. Runs in
/// O(n^2 4^k) worst case.
Result<BudgetedResult> SolveBudgetedGreedy(const BudgetedInstance& input);

/// Exact branch-and-bound over per-query commit/skip decisions; exponential,
/// guarded (for tests and small planning problems).
struct BudgetedExactLimits {
  size_t max_queries = 16;
  size_t max_query_length = 6;
  uint64_t max_nodes = 20'000'000;
};
Result<BudgetedResult> SolveBudgetedExact(
    const BudgetedInstance& input, const BudgetedExactLimits& limits = {});

}  // namespace mc3

