// Overlapping construction costs — the other future-work direction of
// Section 8: "a more general model, where there may be some overlap in the
// work required for construction of different classifiers", making the cost
// of a *set* of classifiers lower than the sum of its members.
//
// Model implemented here (the natural first-order overlap): training data
// is labeled per property. A classifier's cost splits into
//     W(C) = base(C) + sum over p in C of label(p),
// where label(p) is the cost of annotating the training pool for property p
// (paid once, shared by every selected classifier containing p), and
// base(C) covers the classifier-specific work (model fitting, conjunction-
// specific curation). The cost of a set S is therefore
//     W(S) = sum base(C) + sum over p in P(S) of label(p),
// which is subadditive exactly when classifiers share properties.
//
// The plain MC3 reduction no longer applies (costs are not modular), so
// this module provides a marginal-cost greedy in the spirit of Local-Greedy
// plus an exact oracle for small instances.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/instance.h"
#include "core/solution.h"
#include "util/status.h"

namespace mc3 {

/// The decomposed cost model.
struct SharedLabelingModel {
  /// Classifier-specific cost; classifiers absent here are unavailable.
  CostMap base_costs;
  /// Per-property labeling cost, paid once across the whole solution.
  std::unordered_map<PropertyId, Cost> label_costs;

  /// Cost of `classifier` alone (base + its labels); infinite if absent.
  Cost StandaloneCost(const PropertySet& classifier) const;
  /// Total cost of a set under the shared model.
  Cost SetCost(const Solution& solution) const;
};

/// Result of a shared-labeling solve.
struct SharedLabelingResult {
  Solution solution;
  Cost cost = 0;
};

/// Marginal-cost greedy: per iteration commits the uncovered query with the
/// cheapest residual cover, where a classifier's marginal cost counts only
/// not-yet-paid base and label components.
Result<SharedLabelingResult> SolveSharedLabelingGreedy(
    const Instance& instance, const SharedLabelingModel& model);

/// Exact branch-and-bound under the shared model (small instances; the
/// limits mirror ExactSolver's).
Result<SharedLabelingResult> SolveSharedLabelingExact(
    const Instance& instance, const SharedLabelingModel& model,
    uint64_t max_nodes = 20'000'000);

/// Flattens the model into a plain MC3 instance by pricing every classifier
/// at its standalone cost — the paper's independent-cost approximation of
/// this richer model. Useful for comparing the two regimes.
Instance FlattenToIndependentCosts(const Instance& instance,
                                   const SharedLabelingModel& model);

}  // namespace mc3

