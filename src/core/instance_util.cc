#include "core/instance_util.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace mc3 {

Instance SubInstance(const Instance& instance,
                     const std::vector<size_t>& query_indices) {
  Instance sub;
  sub.set_property_names(instance.property_names());
  for (size_t i : query_indices) {
    sub.AddQuery(instance.queries()[i]);
  }
  for (const PropertySet& q : sub.queries()) {
    ForEachNonEmptySubset(q, [&](const PropertySet& classifier) {
      const Cost cost = instance.CostOf(classifier);
      if (cost != kInfiniteCost) sub.SetCost(classifier, cost);
    });
  }
  return sub;
}

Instance RandomSubInstance(const Instance& instance, size_t count,
                           uint64_t seed) {
  const size_t n = instance.NumQueries();
  count = std::min(count, n);
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), size_t{0});
  Rng rng(seed);
  // Partial Fisher-Yates: the first `count` slots become the sample.
  for (size_t i = 0; i < count; ++i) {
    const size_t j = i + static_cast<size_t>(rng.UniformInt(0, n - 1 - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  std::sort(indices.begin(), indices.end());  // keep original query order
  return SubInstance(instance, indices);
}

Instance BoundClassifierLength(const Instance& instance, size_t max_length) {
  Instance bounded;
  bounded.set_property_names(instance.property_names());
  for (const PropertySet& q : instance.queries()) bounded.AddQuery(q);
  for (const auto& [classifier, cost] : instance.costs()) {
    if (classifier.size() <= max_length) bounded.SetCost(classifier, cost);
  }
  return bounded;
}

}  // namespace mc3
