#include "core/instance_util.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/rng.h"
#include "util/union_find.h"
#include "util/float_cmp.h"

namespace mc3 {

Instance SubInstance(const Instance& instance,
                     const std::vector<size_t>& query_indices) {
  Instance sub;
  sub.set_property_names(instance.property_names());
  for (size_t i : query_indices) {
    sub.AddQuery(instance.queries()[i]);
  }
  for (const PropertySet& q : sub.queries()) {
    ForEachNonEmptySubset(q, [&](const PropertySet& classifier) {
      const Cost cost = instance.CostOf(classifier);
      if (!IsInfiniteCost(cost)) sub.SetCost(classifier, cost);
    });
  }
  return sub;
}

Instance RandomSubInstance(const Instance& instance, size_t count,
                           uint64_t seed) {
  const size_t n = instance.NumQueries();
  count = std::min(count, n);
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), size_t{0});
  Rng rng(seed);
  // Partial Fisher-Yates: the first `count` slots become the sample.
  for (size_t i = 0; i < count; ++i) {
    const size_t j = i + static_cast<size_t>(rng.UniformInt(0, n - 1 - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  std::sort(indices.begin(), indices.end());  // keep original query order
  return SubInstance(instance, indices);
}

ComponentPartition PartitionQueries(const std::vector<PropertySet>& queries,
                                    const std::vector<size_t>& query_indices) {
  ComponentPartition partition;
  partition.component_of.assign(query_indices.size(), 0);
  if (query_indices.empty()) return partition;

  UnionFind uf;
  for (size_t qi : query_indices) {
    const auto& ids = queries[qi].ids();
    for (size_t j = 1; j < ids.size(); ++j) uf.Union(ids[j - 1], ids[j]);
  }
  std::unordered_map<PropertyId, size_t> root_to_component;
  for (size_t idx = 0; idx < query_indices.size(); ++idx) {
    const PropertyId root = uf.Find(*queries[query_indices[idx]].begin());
    const auto [it, inserted] =
        root_to_component.emplace(root, partition.num_components);
    if (inserted) ++partition.num_components;
    partition.component_of[idx] = it->second;
  }
  return partition;
}

ComponentPartition PartitionQueries(const std::vector<PropertySet>& queries) {
  std::vector<size_t> all(queries.size());
  std::iota(all.begin(), all.end(), size_t{0});
  return PartitionQueries(queries, all);
}

std::vector<Instance> DecomposeComponents(const Instance& instance) {
  const ComponentPartition partition = PartitionQueries(instance.queries());
  std::vector<std::vector<size_t>> members(partition.num_components);
  for (size_t qi = 0; qi < instance.NumQueries(); ++qi) {
    members[partition.component_of[qi]].push_back(qi);
  }
  std::vector<Instance> components;
  components.reserve(members.size());
  for (const std::vector<size_t>& indices : members) {
    components.push_back(SubInstance(instance, indices));
  }
  return components;
}

Instance BoundClassifierLength(const Instance& instance, size_t max_length) {
  Instance bounded;
  bounded.set_property_names(instance.property_names());
  for (const PropertySet& q : instance.queries()) bounded.AddQuery(q);
  for (const auto& [classifier, cost] : SortedCostEntries(instance.costs())) {
    if (classifier.size() <= max_length) bounded.SetCost(classifier, cost);
  }
  return bounded;
}

}  // namespace mc3
