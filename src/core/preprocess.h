// Preprocessing pruning procedure (paper Section 3, Algorithm 1). This is
// the initial step of every solver; it preserves at least one optimal
// solution while (in practice) significantly shrinking the instance.
//
// Step 1 (Obs. 3.1): singleton queries force their singleton classifier;
//         all zero-weight classifiers are selected for free.
// Step 2 (Obs. 3.2): the property co-occurrence graph decomposes the
//         instance into independent components, solvable separately.
// Step 3 (Obs. 3.3): a classifier whose cheapest 2-part decomposition does
//         not cost more than the classifier itself is removed (iterating by
//         length; removed parts are substituted by their own recorded
//         decompositions). Queries left with a forced cover get it selected,
//         and the step repeats on classifiers touching the new selections.
// Step 4 (Obs. 3.4, only when all remaining queries have length <= 2): a
//         singleton classifier X whose intersecting classifiers jointly cost
//         at most W(X) is removed and those classifiers are selected; the
//         check chains to the other endpoints of the selected pairs.
//
// Implementation notes.
//  * We run steps in the order 1, 3, 4 and materialize the component
//    partition (step 2) last: steps 3/4 never merge components, and step 3's
//    forced selections can cover whole queries, only refining the partition.
//    Each sub-instance is thus final when emitted.
//  * The "only one cover possibility" test of line 10 is implemented as the
//    sound per-property rule: if an uncovered property p of query q has
//    exactly one available classifier C (p in C, C subseteq q), then C is in
//    every optimal solution restricted to available classifiers, so C is
//    selected. (This strictly generalizes the line-10 condition.)
//  * Selected classifiers remain available to the residual instance at cost
//    zero, exactly as the paper models selection.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/solution.h"
#include "util/status.h"

namespace mc3 {

/// Per-step switches (all on by default); the ablation bench toggles them.
struct PreprocessOptions {
  bool step1_forced_singletons = true;
  bool step3_decompositions = true;
  bool step4_k2_singleton_prune = true;
  bool step2_partition = true;  ///< off = emit one residual instance
  /// Safety bound on step-3 fixpoint passes (each pass removes or selects at
  /// least one classifier, so the bound is never hit in practice).
  int max_step3_passes = 64;
  /// Testing hook: run the generic implementation even on k <= 2 instances
  /// (which normally take a specialized fast path). The two paths are
  /// cross-checked for equivalence in the test suite.
  bool force_generic_path = false;
};

/// Counters describing what the procedure did.
struct PreprocessStats {
  size_t singleton_queries_selected = 0;
  size_t zero_weight_selected = 0;
  size_t classifiers_removed_step3 = 0;
  size_t forced_selections_step3 = 0;
  int step3_passes = 0;
  size_t singletons_removed_step4 = 0;
  size_t selections_step4 = 0;
  size_t queries_covered = 0;    ///< queries fully covered by preprocessing
  size_t num_components = 0;
  size_t remaining_queries = 0;
  size_t remaining_classifiers = 0;  ///< available classifiers in residuals
};

/// Output of Algorithm 1.
struct PreprocessResult {
  /// Classifiers selected during preprocessing; part of every solution
  /// assembled from this result.
  Solution forced;
  /// Total original cost of the forced classifiers.
  Cost forced_cost = 0;
  /// Residual independent sub-instances (step 2). Forced classifiers appear
  /// in them with cost zero; pruned classifiers are omitted. Every query of
  /// the original instance is either covered by `forced` or present in
  /// exactly one component.
  std::vector<Instance> components;
  PreprocessStats stats;
};

/// Runs Algorithm 1 on `instance`. Returns kInfeasible when some query
/// cannot be covered by finite-weight classifiers.
Result<PreprocessResult> Preprocess(const Instance& instance,
                                    const PreprocessOptions& options = {});

}  // namespace mc3

