file(REMOVE_RECURSE
  "libmc3_lp.a"
)
