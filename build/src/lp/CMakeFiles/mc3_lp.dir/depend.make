# Empty dependencies file for mc3_lp.
# This may be replaced when dependencies are built.
