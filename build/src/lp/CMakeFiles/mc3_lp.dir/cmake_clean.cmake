file(REMOVE_RECURSE
  "CMakeFiles/mc3_lp.dir/simplex.cc.o"
  "CMakeFiles/mc3_lp.dir/simplex.cc.o.d"
  "libmc3_lp.a"
  "libmc3_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc3_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
