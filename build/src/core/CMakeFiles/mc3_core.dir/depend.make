# Empty dependencies file for mc3_core.
# This may be replaced when dependencies are built.
