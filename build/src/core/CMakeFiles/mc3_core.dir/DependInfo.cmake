
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/mc3_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/cover_dp.cc" "src/core/CMakeFiles/mc3_core.dir/cover_dp.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/cover_dp.cc.o.d"
  "/root/repo/src/core/exact_solver.cc" "src/core/CMakeFiles/mc3_core.dir/exact_solver.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/exact_solver.cc.o.d"
  "/root/repo/src/core/general_solver.cc" "src/core/CMakeFiles/mc3_core.dir/general_solver.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/general_solver.cc.o.d"
  "/root/repo/src/core/hardness.cc" "src/core/CMakeFiles/mc3_core.dir/hardness.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/hardness.cc.o.d"
  "/root/repo/src/core/instance.cc" "src/core/CMakeFiles/mc3_core.dir/instance.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/instance.cc.o.d"
  "/root/repo/src/core/instance_util.cc" "src/core/CMakeFiles/mc3_core.dir/instance_util.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/instance_util.cc.o.d"
  "/root/repo/src/core/k2_solver.cc" "src/core/CMakeFiles/mc3_core.dir/k2_solver.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/k2_solver.cc.o.d"
  "/root/repo/src/core/multi_valued.cc" "src/core/CMakeFiles/mc3_core.dir/multi_valued.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/multi_valued.cc.o.d"
  "/root/repo/src/core/partial_cover.cc" "src/core/CMakeFiles/mc3_core.dir/partial_cover.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/partial_cover.cc.o.d"
  "/root/repo/src/core/preprocess.cc" "src/core/CMakeFiles/mc3_core.dir/preprocess.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/preprocess.cc.o.d"
  "/root/repo/src/core/property_set.cc" "src/core/CMakeFiles/mc3_core.dir/property_set.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/property_set.cc.o.d"
  "/root/repo/src/core/shared_labeling.cc" "src/core/CMakeFiles/mc3_core.dir/shared_labeling.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/shared_labeling.cc.o.d"
  "/root/repo/src/core/short_first_solver.cc" "src/core/CMakeFiles/mc3_core.dir/short_first_solver.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/short_first_solver.cc.o.d"
  "/root/repo/src/core/solution.cc" "src/core/CMakeFiles/mc3_core.dir/solution.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/solution.cc.o.d"
  "/root/repo/src/core/solver.cc" "src/core/CMakeFiles/mc3_core.dir/solver.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/solver.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/mc3_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/stats.cc.o.d"
  "/root/repo/src/core/wsc_reduction.cc" "src/core/CMakeFiles/mc3_core.dir/wsc_reduction.cc.o" "gcc" "src/core/CMakeFiles/mc3_core.dir/wsc_reduction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mc3_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mc3_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/setcover/CMakeFiles/mc3_setcover.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mc3_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
