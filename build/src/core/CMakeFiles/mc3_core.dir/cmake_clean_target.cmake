file(REMOVE_RECURSE
  "libmc3_core.a"
)
