
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/bestbuy.cc" "src/data/CMakeFiles/mc3_data.dir/bestbuy.cc.o" "gcc" "src/data/CMakeFiles/mc3_data.dir/bestbuy.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/mc3_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/mc3_data.dir/io.cc.o.d"
  "/root/repo/src/data/private_dataset.cc" "src/data/CMakeFiles/mc3_data.dir/private_dataset.cc.o" "gcc" "src/data/CMakeFiles/mc3_data.dir/private_dataset.cc.o.d"
  "/root/repo/src/data/query_log.cc" "src/data/CMakeFiles/mc3_data.dir/query_log.cc.o" "gcc" "src/data/CMakeFiles/mc3_data.dir/query_log.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/mc3_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/mc3_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mc3_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mc3_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mc3_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/setcover/CMakeFiles/mc3_setcover.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mc3_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
