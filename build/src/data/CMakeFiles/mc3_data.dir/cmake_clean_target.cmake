file(REMOVE_RECURSE
  "libmc3_data.a"
)
