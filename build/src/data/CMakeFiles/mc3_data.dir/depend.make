# Empty dependencies file for mc3_data.
# This may be replaced when dependencies are built.
