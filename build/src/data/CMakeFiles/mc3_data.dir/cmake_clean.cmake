file(REMOVE_RECURSE
  "CMakeFiles/mc3_data.dir/bestbuy.cc.o"
  "CMakeFiles/mc3_data.dir/bestbuy.cc.o.d"
  "CMakeFiles/mc3_data.dir/io.cc.o"
  "CMakeFiles/mc3_data.dir/io.cc.o.d"
  "CMakeFiles/mc3_data.dir/private_dataset.cc.o"
  "CMakeFiles/mc3_data.dir/private_dataset.cc.o.d"
  "CMakeFiles/mc3_data.dir/query_log.cc.o"
  "CMakeFiles/mc3_data.dir/query_log.cc.o.d"
  "CMakeFiles/mc3_data.dir/synthetic.cc.o"
  "CMakeFiles/mc3_data.dir/synthetic.cc.o.d"
  "libmc3_data.a"
  "libmc3_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc3_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
