# Empty compiler generated dependencies file for mc3_util.
# This may be replaced when dependencies are built.
