file(REMOVE_RECURSE
  "CMakeFiles/mc3_util.dir/csv.cc.o"
  "CMakeFiles/mc3_util.dir/csv.cc.o.d"
  "CMakeFiles/mc3_util.dir/status.cc.o"
  "CMakeFiles/mc3_util.dir/status.cc.o.d"
  "CMakeFiles/mc3_util.dir/table.cc.o"
  "CMakeFiles/mc3_util.dir/table.cc.o.d"
  "libmc3_util.a"
  "libmc3_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc3_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
