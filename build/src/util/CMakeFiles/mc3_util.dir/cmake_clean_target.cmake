file(REMOVE_RECURSE
  "libmc3_util.a"
)
