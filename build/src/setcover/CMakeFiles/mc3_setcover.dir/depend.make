# Empty dependencies file for mc3_setcover.
# This may be replaced when dependencies are built.
