
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/setcover/exact.cc" "src/setcover/CMakeFiles/mc3_setcover.dir/exact.cc.o" "gcc" "src/setcover/CMakeFiles/mc3_setcover.dir/exact.cc.o.d"
  "/root/repo/src/setcover/greedy.cc" "src/setcover/CMakeFiles/mc3_setcover.dir/greedy.cc.o" "gcc" "src/setcover/CMakeFiles/mc3_setcover.dir/greedy.cc.o.d"
  "/root/repo/src/setcover/instance.cc" "src/setcover/CMakeFiles/mc3_setcover.dir/instance.cc.o" "gcc" "src/setcover/CMakeFiles/mc3_setcover.dir/instance.cc.o.d"
  "/root/repo/src/setcover/lp_rounding.cc" "src/setcover/CMakeFiles/mc3_setcover.dir/lp_rounding.cc.o" "gcc" "src/setcover/CMakeFiles/mc3_setcover.dir/lp_rounding.cc.o.d"
  "/root/repo/src/setcover/primal_dual.cc" "src/setcover/CMakeFiles/mc3_setcover.dir/primal_dual.cc.o" "gcc" "src/setcover/CMakeFiles/mc3_setcover.dir/primal_dual.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mc3_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mc3_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
