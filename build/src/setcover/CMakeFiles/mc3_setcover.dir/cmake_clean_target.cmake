file(REMOVE_RECURSE
  "libmc3_setcover.a"
)
