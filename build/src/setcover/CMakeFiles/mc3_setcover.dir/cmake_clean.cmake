file(REMOVE_RECURSE
  "CMakeFiles/mc3_setcover.dir/exact.cc.o"
  "CMakeFiles/mc3_setcover.dir/exact.cc.o.d"
  "CMakeFiles/mc3_setcover.dir/greedy.cc.o"
  "CMakeFiles/mc3_setcover.dir/greedy.cc.o.d"
  "CMakeFiles/mc3_setcover.dir/instance.cc.o"
  "CMakeFiles/mc3_setcover.dir/instance.cc.o.d"
  "CMakeFiles/mc3_setcover.dir/lp_rounding.cc.o"
  "CMakeFiles/mc3_setcover.dir/lp_rounding.cc.o.d"
  "CMakeFiles/mc3_setcover.dir/primal_dual.cc.o"
  "CMakeFiles/mc3_setcover.dir/primal_dual.cc.o.d"
  "libmc3_setcover.a"
  "libmc3_setcover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc3_setcover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
