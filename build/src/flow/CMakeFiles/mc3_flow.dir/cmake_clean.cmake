file(REMOVE_RECURSE
  "CMakeFiles/mc3_flow.dir/bipartite_vertex_cover.cc.o"
  "CMakeFiles/mc3_flow.dir/bipartite_vertex_cover.cc.o.d"
  "CMakeFiles/mc3_flow.dir/dinic.cc.o"
  "CMakeFiles/mc3_flow.dir/dinic.cc.o.d"
  "CMakeFiles/mc3_flow.dir/edmonds_karp.cc.o"
  "CMakeFiles/mc3_flow.dir/edmonds_karp.cc.o.d"
  "CMakeFiles/mc3_flow.dir/hopcroft_karp.cc.o"
  "CMakeFiles/mc3_flow.dir/hopcroft_karp.cc.o.d"
  "CMakeFiles/mc3_flow.dir/network.cc.o"
  "CMakeFiles/mc3_flow.dir/network.cc.o.d"
  "CMakeFiles/mc3_flow.dir/push_relabel.cc.o"
  "CMakeFiles/mc3_flow.dir/push_relabel.cc.o.d"
  "libmc3_flow.a"
  "libmc3_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc3_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
