
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/bipartite_vertex_cover.cc" "src/flow/CMakeFiles/mc3_flow.dir/bipartite_vertex_cover.cc.o" "gcc" "src/flow/CMakeFiles/mc3_flow.dir/bipartite_vertex_cover.cc.o.d"
  "/root/repo/src/flow/dinic.cc" "src/flow/CMakeFiles/mc3_flow.dir/dinic.cc.o" "gcc" "src/flow/CMakeFiles/mc3_flow.dir/dinic.cc.o.d"
  "/root/repo/src/flow/edmonds_karp.cc" "src/flow/CMakeFiles/mc3_flow.dir/edmonds_karp.cc.o" "gcc" "src/flow/CMakeFiles/mc3_flow.dir/edmonds_karp.cc.o.d"
  "/root/repo/src/flow/hopcroft_karp.cc" "src/flow/CMakeFiles/mc3_flow.dir/hopcroft_karp.cc.o" "gcc" "src/flow/CMakeFiles/mc3_flow.dir/hopcroft_karp.cc.o.d"
  "/root/repo/src/flow/network.cc" "src/flow/CMakeFiles/mc3_flow.dir/network.cc.o" "gcc" "src/flow/CMakeFiles/mc3_flow.dir/network.cc.o.d"
  "/root/repo/src/flow/push_relabel.cc" "src/flow/CMakeFiles/mc3_flow.dir/push_relabel.cc.o" "gcc" "src/flow/CMakeFiles/mc3_flow.dir/push_relabel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mc3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
