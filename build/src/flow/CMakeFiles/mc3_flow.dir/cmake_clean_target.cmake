file(REMOVE_RECURSE
  "libmc3_flow.a"
)
