# Empty compiler generated dependencies file for mc3_flow.
# This may be replaced when dependencies are built.
