file(REMOVE_RECURSE
  "CMakeFiles/multi_valued.dir/multi_valued.cpp.o"
  "CMakeFiles/multi_valued.dir/multi_valued.cpp.o.d"
  "multi_valued"
  "multi_valued.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_valued.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
