# Empty dependencies file for multi_valued.
# This may be replaced when dependencies are built.
