# Empty compiler generated dependencies file for catalog_planner.
# This may be replaced when dependencies are built.
