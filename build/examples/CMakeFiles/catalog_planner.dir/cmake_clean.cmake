file(REMOVE_RECURSE
  "CMakeFiles/catalog_planner.dir/catalog_planner.cpp.o"
  "CMakeFiles/catalog_planner.dir/catalog_planner.cpp.o.d"
  "catalog_planner"
  "catalog_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
