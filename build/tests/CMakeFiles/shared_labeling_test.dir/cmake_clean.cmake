file(REMOVE_RECURSE
  "CMakeFiles/shared_labeling_test.dir/shared_labeling_test.cc.o"
  "CMakeFiles/shared_labeling_test.dir/shared_labeling_test.cc.o.d"
  "shared_labeling_test"
  "shared_labeling_test.pdb"
  "shared_labeling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_labeling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
