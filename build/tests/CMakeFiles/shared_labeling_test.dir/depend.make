# Empty dependencies file for shared_labeling_test.
# This may be replaced when dependencies are built.
