# Empty compiler generated dependencies file for setcover_exact_test.
# This may be replaced when dependencies are built.
