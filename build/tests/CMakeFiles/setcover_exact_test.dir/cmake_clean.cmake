file(REMOVE_RECURSE
  "CMakeFiles/setcover_exact_test.dir/setcover_exact_test.cc.o"
  "CMakeFiles/setcover_exact_test.dir/setcover_exact_test.cc.o.d"
  "setcover_exact_test"
  "setcover_exact_test.pdb"
  "setcover_exact_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setcover_exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
