file(REMOVE_RECURSE
  "CMakeFiles/wsc_reduction_test.dir/wsc_reduction_test.cc.o"
  "CMakeFiles/wsc_reduction_test.dir/wsc_reduction_test.cc.o.d"
  "wsc_reduction_test"
  "wsc_reduction_test.pdb"
  "wsc_reduction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
