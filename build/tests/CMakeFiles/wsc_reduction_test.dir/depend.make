# Empty dependencies file for wsc_reduction_test.
# This may be replaced when dependencies are built.
