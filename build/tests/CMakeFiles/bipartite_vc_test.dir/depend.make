# Empty dependencies file for bipartite_vc_test.
# This may be replaced when dependencies are built.
