file(REMOVE_RECURSE
  "CMakeFiles/bipartite_vc_test.dir/bipartite_vc_test.cc.o"
  "CMakeFiles/bipartite_vc_test.dir/bipartite_vc_test.cc.o.d"
  "bipartite_vc_test"
  "bipartite_vc_test.pdb"
  "bipartite_vc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bipartite_vc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
