file(REMOVE_RECURSE
  "CMakeFiles/k2_solver_test.dir/k2_solver_test.cc.o"
  "CMakeFiles/k2_solver_test.dir/k2_solver_test.cc.o.d"
  "k2_solver_test"
  "k2_solver_test.pdb"
  "k2_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k2_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
