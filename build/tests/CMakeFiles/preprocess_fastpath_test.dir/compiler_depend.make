# Empty compiler generated dependencies file for preprocess_fastpath_test.
# This may be replaced when dependencies are built.
