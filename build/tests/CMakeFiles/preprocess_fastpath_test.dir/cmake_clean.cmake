file(REMOVE_RECURSE
  "CMakeFiles/preprocess_fastpath_test.dir/preprocess_fastpath_test.cc.o"
  "CMakeFiles/preprocess_fastpath_test.dir/preprocess_fastpath_test.cc.o.d"
  "preprocess_fastpath_test"
  "preprocess_fastpath_test.pdb"
  "preprocess_fastpath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preprocess_fastpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
