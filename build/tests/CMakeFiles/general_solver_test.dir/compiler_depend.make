# Empty compiler generated dependencies file for general_solver_test.
# This may be replaced when dependencies are built.
