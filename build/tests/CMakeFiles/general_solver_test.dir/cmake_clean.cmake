file(REMOVE_RECURSE
  "CMakeFiles/general_solver_test.dir/general_solver_test.cc.o"
  "CMakeFiles/general_solver_test.dir/general_solver_test.cc.o.d"
  "general_solver_test"
  "general_solver_test.pdb"
  "general_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
