# Empty compiler generated dependencies file for partial_cover_test.
# This may be replaced when dependencies are built.
