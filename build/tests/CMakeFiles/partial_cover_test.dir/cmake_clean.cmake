file(REMOVE_RECURSE
  "CMakeFiles/partial_cover_test.dir/partial_cover_test.cc.o"
  "CMakeFiles/partial_cover_test.dir/partial_cover_test.cc.o.d"
  "partial_cover_test"
  "partial_cover_test.pdb"
  "partial_cover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_cover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
