# Empty dependencies file for instance_util_test.
# This may be replaced when dependencies are built.
