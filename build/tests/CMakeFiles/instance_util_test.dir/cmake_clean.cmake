file(REMOVE_RECURSE
  "CMakeFiles/instance_util_test.dir/instance_util_test.cc.o"
  "CMakeFiles/instance_util_test.dir/instance_util_test.cc.o.d"
  "instance_util_test"
  "instance_util_test.pdb"
  "instance_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
