# Empty dependencies file for multi_valued_test.
# This may be replaced when dependencies are built.
