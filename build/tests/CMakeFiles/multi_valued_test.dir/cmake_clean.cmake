file(REMOVE_RECURSE
  "CMakeFiles/multi_valued_test.dir/multi_valued_test.cc.o"
  "CMakeFiles/multi_valued_test.dir/multi_valued_test.cc.o.d"
  "multi_valued_test"
  "multi_valued_test.pdb"
  "multi_valued_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_valued_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
