file(REMOVE_RECURSE
  "CMakeFiles/cover_dp_test.dir/cover_dp_test.cc.o"
  "CMakeFiles/cover_dp_test.dir/cover_dp_test.cc.o.d"
  "cover_dp_test"
  "cover_dp_test.pdb"
  "cover_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cover_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
