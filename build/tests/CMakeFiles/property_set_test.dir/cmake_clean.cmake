file(REMOVE_RECURSE
  "CMakeFiles/property_set_test.dir/property_set_test.cc.o"
  "CMakeFiles/property_set_test.dir/property_set_test.cc.o.d"
  "property_set_test"
  "property_set_test.pdb"
  "property_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
