# Empty compiler generated dependencies file for bench_fig3a_bb_short.
# This may be replaced when dependencies are built.
