# Empty compiler generated dependencies file for bench_fig3b_p_short.
# This may be replaced when dependencies are built.
