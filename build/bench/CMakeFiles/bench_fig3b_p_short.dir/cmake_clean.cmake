file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3b_p_short.dir/bench_fig3b_p_short.cc.o"
  "CMakeFiles/bench_fig3b_p_short.dir/bench_fig3b_p_short.cc.o.d"
  "bench_fig3b_p_short"
  "bench_fig3b_p_short.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3b_p_short.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
