# Empty compiler generated dependencies file for bench_fig3c_short_runtime.
# This may be replaced when dependencies are built.
