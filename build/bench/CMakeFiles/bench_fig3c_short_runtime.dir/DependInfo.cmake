
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3c_short_runtime.cc" "bench/CMakeFiles/bench_fig3c_short_runtime.dir/bench_fig3c_short_runtime.cc.o" "gcc" "bench/CMakeFiles/bench_fig3c_short_runtime.dir/bench_fig3c_short_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mc3_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mc3_data.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mc3_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/setcover/CMakeFiles/mc3_setcover.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mc3_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mc3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
