# Empty compiler generated dependencies file for bench_ablation_bounded.
# This may be replaced when dependencies are built.
