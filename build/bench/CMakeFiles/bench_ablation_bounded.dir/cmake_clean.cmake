file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bounded.dir/bench_ablation_bounded.cc.o"
  "CMakeFiles/bench_ablation_bounded.dir/bench_ablation_bounded.cc.o.d"
  "bench_ablation_bounded"
  "bench_ablation_bounded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
