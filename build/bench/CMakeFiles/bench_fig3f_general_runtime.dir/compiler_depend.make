# Empty compiler generated dependencies file for bench_fig3f_general_runtime.
# This may be replaced when dependencies are built.
