# Empty compiler generated dependencies file for bench_fig3e_prep_cost.
# This may be replaced when dependencies are built.
