# Empty compiler generated dependencies file for bench_fig3d_p_general.
# This may be replaced when dependencies are built.
