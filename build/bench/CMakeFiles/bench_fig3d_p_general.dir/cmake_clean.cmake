file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3d_p_general.dir/bench_fig3d_p_general.cc.o"
  "CMakeFiles/bench_fig3d_p_general.dir/bench_fig3d_p_general.cc.o.d"
  "bench_fig3d_p_general"
  "bench_fig3d_p_general.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3d_p_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
