file(REMOVE_RECURSE
  "CMakeFiles/mc3.dir/mc3_cli.cc.o"
  "CMakeFiles/mc3.dir/mc3_cli.cc.o.d"
  "mc3"
  "mc3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
