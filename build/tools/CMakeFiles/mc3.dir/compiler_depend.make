# Empty compiler generated dependencies file for mc3.
# This may be replaced when dependencies are built.
