# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate "/root/repo/build/tools/mc3" "generate" "--dataset" "synthetic" "--n" "60" "--seed" "2" "-o" "/root/repo/build/cli_smoke_workload.csv")
set_tests_properties(cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_stats "/root/repo/build/tools/mc3" "stats" "/root/repo/build/cli_smoke_workload.csv")
set_tests_properties(cli_stats PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_solve "/root/repo/build/tools/mc3" "solve" "/root/repo/build/cli_smoke_workload.csv" "--solver" "general" "--plan")
set_tests_properties(cli_solve PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_solve_threads "/root/repo/build/tools/mc3" "solve" "/root/repo/build/cli_smoke_workload.csv" "--threads" "2" "--exact-components" "6")
set_tests_properties(cli_solve_threads PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_preprocess "/root/repo/build/tools/mc3" "preprocess" "/root/repo/build/cli_smoke_workload.csv")
set_tests_properties(cli_preprocess PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/mc3")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_ingest "/root/repo/build/tools/mc3" "ingest" "/root/repo/build/cli_smoke_log.txt" "-o" "/root/repo/build/cli_smoke_ingested.csv")
set_tests_properties(cli_ingest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_ingest_solve "/root/repo/build/tools/mc3" "solve" "/root/repo/build/cli_smoke_ingested.csv" "--plan")
set_tests_properties(cli_ingest_solve PROPERTIES  DEPENDS "cli_ingest" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_solve_out "/root/repo/build/tools/mc3" "solve" "/root/repo/build/cli_smoke_workload.csv" "--out" "/root/repo/build/cli_smoke_plan.csv")
set_tests_properties(cli_solve_out PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;32;add_test;/root/repo/tools/CMakeLists.txt;0;")
